/**
 * @file
 * Offline maintenance for a result-store directory (docs/SERVICE.md,
 * docs/ROBUSTNESS.md).
 *
 * Usage:
 *   davf_store fsck [--repair] DIR
 *   davf_store compact DIR
 *   davf_store migrate DIR
 *   davf_store populate [--format F] [--payload-bytes N] DIR COUNT
 *   davf_store crashpoints
 *
 * `fsck` checks DIR, dispatching on its format: an indexed store
 * (index.davf present) gets the index checker (store/index_fsck.hh:
 * torn splits, stale index pages/entries, garbled frames, torn tails,
 * legacy strays), a legacy store gets the per-file checker
 * (service/store_fsck.hh). Exit 0 when the store is damage-free, 1
 * when damage was found (or, with --repair, when some damage could
 * not be repaired) or the directory is unreadable, 2 on usage errors.
 * With --repair, damage evidence is quarantined into DIR/quarantine/
 * (never deleted) and the index, being derived data, is rebuilt from
 * the segment file; a repaired store exits 0.
 *
 * `compact` is repair plus space recovery. Indexed: absorb legacy
 * strays, quarantine damage, rewrite the segment file to live records
 * only, rebuild the index. Legacy: re-home misplaced records, drop
 * duplicate-key losers. Crash-safe — killing it at any instant leaves
 * a store a rerun finishes.
 *
 * `migrate` absorbs every legacy per-file record into the indexed
 * tier (creating it if absent), unlinking each legacy file only after
 * its replacement is durable; damaged legacy records are quarantined.
 * Idempotent and crash-safe — rerun after any interruption.
 *
 * `populate` writes COUNT synthetic records (deterministic keys and
 * payloads) through a ResultStore in the chosen format — fixture
 * setup for the CI store smoke and benchmarks.
 *
 * `crashpoints` prints every crash-point name compiled into this
 * binary (util/crashpoint.hh), one per line; the CI crash soak
 * iterates this list.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "service/result_store.hh"
#include "service/store_fsck.hh"
#include "store/index_fsck.hh"
#include "store/index_store.hh"
#include "store/migrate.hh"
#include "util/crashpoint.hh"
#include "util/logging.hh"

using namespace davf;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s fsck [--repair] DIR\n"
                 "       %s compact DIR\n"
                 "       %s migrate DIR\n"
                 "       %s populate [--format auto|legacy|index]"
                 " [--payload-bytes N] DIR COUNT\n"
                 "       %s crashpoints\n",
                 argv0, argv0, argv0, argv0, argv0);
    return 2;
}

void
printReport(const service::FsckReport &report)
{
    for (const service::StoreEntry &entry : report.entries) {
        if (entry.kind == service::StoreEntryKind::Valid
            || entry.kind == service::StoreEntryKind::Foreign) {
            continue;
        }
        std::fprintf(stderr, "%-10s %s%s%s\n",
                     service::storeEntryKindName(entry.kind),
                     entry.name.c_str(),
                     entry.detail.empty() ? "" : ": ",
                     entry.detail.c_str());
    }
    std::fprintf(stderr,
                 "%llu valid, %llu misplaced, %llu torn, %llu garbled, "
                 "%llu orphan tmp(s), %llu foreign\n",
                 (unsigned long long)report.valid,
                 (unsigned long long)report.misplaced,
                 (unsigned long long)report.torn,
                 (unsigned long long)report.garbled,
                 (unsigned long long)report.orphanTmps,
                 (unsigned long long)report.foreign);
    if (report.quarantined || report.removedTmps || report.rehomed
        || report.duplicateLosers) {
        std::fprintf(stderr,
                     "repaired: %llu quarantined, %llu tmp(s) removed, "
                     "%llu re-homed, %llu duplicate loser(s) dropped\n",
                     (unsigned long long)report.quarantined,
                     (unsigned long long)report.removedTmps,
                     (unsigned long long)report.rehomed,
                     (unsigned long long)report.duplicateLosers);
    }
}

void
printIndexReport(const store::IndexFsckReport &report)
{
    for (const std::string &note : report.notes)
        std::fprintf(stderr, "%s\n", note.c_str());
    std::fprintf(stderr,
                 "index store: %llu valid frame(s), %llu superseded, "
                 "%llu garbled, %llu torn-tail byte(s), "
                 "%llu stale entr(ies), %llu unindexed, "
                 "%llu legacy stray(s), %llu foreign%s%s\n",
                 (unsigned long long)report.validFrames,
                 (unsigned long long)report.superseded,
                 (unsigned long long)report.garbledFrames,
                 (unsigned long long)report.tornTailBytes,
                 (unsigned long long)report.staleEntries,
                 (unsigned long long)report.unindexed,
                 (unsigned long long)report.legacyStrays,
                 (unsigned long long)report.foreign,
                 report.tornSplit ? ", torn split" : "",
                 report.staleIndex ? ", stale index" : "");
    if (report.quarantined || report.rebuilt || report.migrated
        || report.reclaimedBytes) {
        std::fprintf(stderr,
                     "repaired: %llu quarantined, %llu migrated, "
                     "%llu byte(s) reclaimed%s\n",
                     (unsigned long long)report.quarantined,
                     (unsigned long long)report.migrated,
                     (unsigned long long)report.reclaimedBytes,
                     report.rebuilt ? ", index rebuilt" : "");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    return guardedMain([&]() -> int {
        if (argc < 2)
            return usage(argv[0]);
        const std::string verb = argv[1];

        if (verb == "crashpoints") {
            for (const std::string &name : crashpoint::knownPoints())
                std::printf("%s\n", name.c_str());
            return 0;
        }

        if (verb == "fsck") {
            service::FsckOptions options;
            std::string dir;
            for (int i = 2; i < argc; ++i) {
                if (std::strcmp(argv[i], "--repair") == 0)
                    options.repair = true;
                else if (dir.empty())
                    dir = argv[i];
                else
                    return usage(argv[0]);
            }
            if (dir.empty())
                return usage(argv[0]);
            if (store::IndexStore::present(dir)) {
                const store::IndexFsckReport report =
                    store::fsckIndexStore(
                        dir, {.repair = options.repair});
                printIndexReport(report);
                return report.clean() ? 0 : 1;
            }
            const service::FsckReport report =
                service::fsckStore(dir, options);
            printReport(report);
            return report.clean() ? 0 : 1;
        }

        if (verb == "compact") {
            if (argc != 3)
                return usage(argv[0]);
            const std::string dir = argv[2];
            if (store::IndexStore::present(dir)) {
                const store::IndexFsckReport report =
                    store::compactIndexStoreDir(dir);
                printIndexReport(report);
                return report.clean() ? 0 : 1;
            }
            const service::FsckReport report =
                service::compactStore(dir);
            printReport(report);
            return report.clean() ? 0 : 1;
        }

        if (verb == "migrate") {
            if (argc != 3)
                return usage(argv[0]);
            const store::MigrateReport report =
                store::migrateStore(argv[2]);
            std::fprintf(stderr,
                         "migrated %llu record(s), %llu already "
                         "indexed, %llu quarantined, %llu foreign "
                         "entr(ies) untouched\n",
                         (unsigned long long)report.migrated,
                         (unsigned long long)report.alreadyIndexed,
                         (unsigned long long)report.quarantined,
                         (unsigned long long)report.foreign);
            return report.quarantined == 0 ? 0 : 1;
        }

        if (verb == "populate") {
            service::ResultStore::Options options;
            options.memCapacity = 0;
            size_t payloadBytes = 64;
            std::string dir;
            long long count = -1;
            for (int i = 2; i < argc; ++i) {
                const std::string arg = argv[i];
                if (arg == "--format" && i + 1 < argc) {
                    const auto format =
                        service::parseStoreFormat(argv[++i]);
                    if (!format)
                        return usage(argv[0]);
                    options.format = *format;
                } else if (arg == "--payload-bytes" && i + 1 < argc) {
                    payloadBytes = std::strtoull(argv[++i], nullptr, 10);
                } else if (dir.empty()) {
                    dir = arg;
                } else if (count < 0) {
                    count = std::strtoll(arg.c_str(), nullptr, 10);
                } else {
                    return usage(argv[0]);
                }
            }
            if (dir.empty() || count < 0)
                return usage(argv[0]);
            options.dir = dir;
            service::ResultStore store(options);
            for (long long i = 0; i < count; ++i) {
                const std::string key =
                    "populate-key-" + std::to_string(i);
                std::string payload =
                    "payload-" + std::to_string(i) + "-";
                while (payload.size() < payloadBytes)
                    payload += 'x';
                store.store(key, payload);
            }
            std::fprintf(stderr, "populated %lld %s record(s) in %s\n",
                         count,
                         store.indexed() ? "indexed" : "legacy",
                         dir.c_str());
            return 0;
        }

        return usage(argv[0]);
    });
}
