/**
 * @file
 * Supervised, process-isolated campaign execution.
 *
 * Thread-mode campaigns share one address space with the engine: a
 * crash, a runaway allocation, or a hard hang inside a single injection
 * takes the whole sweep down. Process isolation puts that blast radius
 * inside disposable workers:
 *
 *  - the campaign re-executes its own binary in a hidden worker mode
 *    (the worker builds the same engine, then serves shards over a
 *    length-prefixed pipe protocol with heartbeats);
 *  - each shard (one injection cycle, or one whole sAVF evaluation) is
 *    dispatched to a pool of N workers; a worker that crashes, hangs
 *    past its deadline, or trips its memory cap is killed and respawned;
 *  - failed shards are retried with exponential backoff; a shard that
 *    keeps crashing is **bisected** over its sampled-wire index range
 *    down to the single offending injection, which is recorded as a
 *    quarantine record and excluded (tallied as skipped with reason
 *    "quarantined", leaving the AVF denominators) while the rest of the
 *    cell completes;
 *  - shard replies carry the exact journal token grammar, so results
 *    aggregate bit-identically to thread mode at any worker count.
 *
 * See docs/ROBUSTNESS.md for the wire protocol and the quarantine
 * record format.
 */

#ifndef DAVF_CAMPAIGN_SUPERVISOR_HH
#define DAVF_CAMPAIGN_SUPERVISOR_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/shard.hh"
#include "core/vulnerability.hh"
#include "netlist/structure.hh"
#include "util/error.hh"
#include "util/subprocess.hh"

namespace davf {

/** How workers are run and how their failures are handled. */
struct SupervisorOptions
{
    /**
     * Command line that starts one worker process (argv[0] is the
     * executable path; typically Subprocess::selfExePath() plus the
     * original arguments plus the hidden worker flag).
     */
    std::vector<std::string> workerArgv;

    /** Worker process pool size. */
    unsigned workers = 1;

    /** Re-dispatch attempts per shard beyond the first. */
    unsigned maxRetries = 2;

    /** Base of the exponential retry backoff (with jitter). */
    double backoffBaseMs = 50.0;

    /** A worker silent for this long is presumed hung and killed. */
    double heartbeatTimeoutMs = 10000.0;

    /** Per-attempt wall-clock budget for one shard; 0 = unlimited.
     *  Catches hangs that keep heartbeating. */
    double shardTimeoutMs = 0.0;

    /** Budget for a fresh worker's hello (covers engine build). */
    double startTimeoutMs = 120000.0;

    /** RLIMIT_AS cap per worker in MiB; 0 = unlimited. */
    uint64_t workerMemMb = 0;

    /** Directory for quarantine records; empty keeps them in memory. */
    std::string quarantineDir;

    /** Most injections quarantined per cell before giving up on it. */
    unsigned maxQuarantinePerCell = 4;

    /** Per-attempt metrics CSV (appended); empty disables. */
    std::string metricsCsvPath;

    /** Campaign identity stamped into quarantine records. */
    std::string configHash;
    std::string benchmark;

    /** Deterministic backoff jitter seed. */
    uint64_t seed = 1;

    /** Cooperative stop flag; checked between attempts. */
    const std::atomic<bool> *stopFlag = nullptr;
};

/**
 * One quarantined injection: everything needed to reproduce it in
 * isolation (the whole engine configuration is implied by configHash;
 * the record pins the cell and the exact sampled-wire index).
 */
struct QuarantineRecord
{
    std::string configHash;
    std::string benchmark;
    std::string structure;
    double delayFraction = 0.0;
    uint64_t cycle = 0;
    size_t wireIndex = 0; ///< Index into the sampled-wire order.
    WireId wire = 0;      ///< The underlying wire, for reproduction.
    uint64_t seed = 0;    ///< Sampling seed the index is relative to.
    std::string reason;   ///< e.g. "killed by signal 6 (Aborted)".

    bool operator==(const QuarantineRecord &) const = default;
};

/** One-line text form (the "davf-quarantine v1" record). */
std::string serializeQuarantineRecord(const QuarantineRecord &record);

/** Parse a serializeQuarantineRecord() line; malformed input is Err. */
Result<QuarantineRecord> parseQuarantineRecord(const std::string &text);

/** Write @p record as a uniquely named file under @p dir. */
void saveQuarantineRecord(const std::string &dir,
                          const QuarantineRecord &record);

/** Load every parseable record under @p dir (missing dir = empty). */
std::vector<QuarantineRecord>
loadQuarantineRecords(const std::string &dir);

/** The worker pool + failure policy (see file comment). */
class Supervisor
{
  public:
    explicit Supervisor(SupervisorOptions options);
    ~Supervisor();

    Supervisor(const Supervisor &) = delete;
    Supervisor &operator=(const Supervisor &) = delete;

    /** Outcome of one DelayAVF cell run under supervision. */
    struct DavfCellResult
    {
        /** Newly quarantined injections (already persisted). */
        std::vector<QuarantineRecord> quarantined;

        bool failed = false; ///< A shard failed beyond repair.
        std::string failReason;
        bool stopped = false; ///< The stop flag interrupted the cell.
    };

    /**
     * Compute the given injection cycles of one (structure, delay)
     * cell across the worker pool. @p wires is the sampled-wire order
     * (engine->sampledWires), used to resolve quarantine indices;
     * @p prior holds already-known quarantine records to exclude.
     * Every completed outcome is delivered through @p on_cycle_done
     * (serialized, from dispatcher threads).
     */
    DavfCellResult runDavfCell(
        const std::string &structure, double delay_fraction,
        const std::vector<uint64_t> &cycles,
        const std::vector<WireId> &wires, const SamplingConfig &sampling,
        const std::vector<QuarantineRecord> &prior,
        const std::function<void(const InjectionCycleOutcome &)>
            &on_cycle_done);

    /** Outcome of one sAVF cell run under supervision. */
    struct SavfCellResult
    {
        SavfResult savf;
        bool failed = false;
        std::string failReason;
        bool stopped = false;
    };

    /** Compute one sAVF cell in a worker (retried, never bisected). */
    SavfCellResult runSavfCell(const std::string &structure,
                               const SamplingConfig &sampling);

    /** Shut every worker down (quit frame, then escalating kill). */
    void shutdown();

  private:
    struct Slot;      // One worker process and its state.
    struct Attempt;   // One shard dispatch and its classified outcome.
    struct CellState; // Shared per-cell dispatch bookkeeping.

    bool stopRequested() const;
    void ensureWorker(Slot &slot);
    void retireWorker(Slot &slot, double grace_ms);
    Attempt dispatchOnce(Slot &slot, const ShardSpec &spec);
    Attempt dispatchWithRetries(Slot &slot, const ShardSpec &spec);
    void backoff(const ShardSpec &spec, unsigned attempt) const;
    void recordMetrics(const ShardSpec &spec, unsigned attempt,
                       const Attempt &outcome);

    /**
     * Narrow a persistently failing cycle shard to single offending
     * sampled-wire indices, quarantining up to the per-cell budget.
     * Returns the final full-range attempt (success, or the failure
     * that exhausted the budget).
     */
    Attempt bisectAndQuarantine(Slot &slot, ShardSpec spec,
                                const std::vector<WireId> &wires,
                                CellState &cell);

    SupervisorOptions options;
    std::vector<std::unique_ptr<Slot>> slots;
    std::mutex metricsMutex;
};

/**
 * The worker side: serve shard requests over stdin/stdout until EOF or
 * a quit frame. Called by tools after building the engine when the
 * hidden worker flag is present. Returns the process exit code.
 */
int runCampaignWorker(VulnerabilityEngine &engine,
                      const StructureRegistry &registry);

} // namespace davf

#endif // DAVF_CAMPAIGN_SUPERVISOR_HH
