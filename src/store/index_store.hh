/**
 * @file
 * The indexed disk tier of the result store: an append-only segment
 * data file (store/segment_file.hh) accelerated by a persistent
 * extendible-hash index (store/hash_index.hh), living together in one
 * store directory alongside (and byte-compatible with) the legacy
 * per-file record tier.
 *
 * **Crash model.** The segment file is the source of truth; the index
 * is an acceleration structure. On open:
 *  - a well-formed index is trusted up to its checkpoint watermark and
 *    the segment tail past the watermark is replayed into it;
 *  - *any* structural doubt (bad header/page checksum, a leftover
 *    split journal, directory holes) triggers a full rebuild from a
 *    segment scan;
 *  - a torn segment tail is quarantined into `<dir>/quarantine/`
 *    (never deleted) and truncated away, mirroring the legacy tier's
 *    repair-on-sight semantics.
 * Lookups verify frame checksums, record checksums, and the full key,
 * so a damaged or colliding record degrades to a miss — never to a
 * wrong payload.
 *
 * **Exclusivity.** One process owns the indexed tier at a time (an
 * exclusive flock on `index.lock`); a second opener gets
 * DavfError{Io} and its ResultStore falls back to legacy per-file
 * records, which the owner later absorbs (lookup fallback, migrate,
 * compact). Within the owner, writers serialize on a mutex while
 * readers stay lock-free.
 *
 * Crash points: `index.append`, `index.bucket_write`,
 * `index.checkpoint`, `index.split_journal`, `index.split_apply`,
 * `index.tail_repair` — every mutation site, so the kill-anywhere
 * matrix covers this engine like the rest of the persistence stack.
 */

#ifndef DAVF_STORE_INDEX_STORE_HH
#define DAVF_STORE_INDEX_STORE_HH

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>

#include "store/hash_index.hh"
#include "store/segment_file.hh"

namespace davf::store {

/** Monotonic counters + shape snapshot of one indexed tier. */
struct IndexStoreStats
{
    uint64_t lookups = 0;
    uint64_t hits = 0;
    uint64_t corrupt = 0;     ///< Damaged frames/records (slot dropped).
    uint64_t future = 0;      ///< Future-version records (slot kept).
    uint64_t collisions = 0;  ///< Full-key mismatch on a hash match.
    uint64_t appends = 0;
    uint64_t replayed = 0;    ///< Tail frames re-inserted at open.
    uint64_t rebuilds = 0;    ///< Full index rebuilds.
    uint64_t tailRepairs = 0; ///< Torn segment tails quarantined.
    uint64_t checkpoints = 0;
    uint64_t checkpointFailures = 0;

    uint64_t keys = 0;         ///< Live index entries.
    uint64_t buckets = 0;
    uint64_t depth = 0;        ///< Directory global depth.
    uint64_t splits = 0;
    uint64_t segmentBytes = 0; ///< Data file logical size.

    bool operator==(const IndexStoreStats &) const = default;
};

/** The combined segment-file + hash-index tier (see file comment). */
class IndexStore
{
  public:
    struct Options
    {
        std::string dir;

        /** fdatasync every segment append (off for bulk loads). */
        bool syncAppends = true;

        /** Appends between automatic checkpoints. */
        uint64_t checkpointInterval = 4096;
    };

    /** Does @p dir hold an indexed tier (an index.davf)? */
    static bool present(const std::string &dir);

    /**
     * Open (creating, rebuilding, repairing as needed — see crash
     * model above). Throws DavfError{Io} when the directory is
     * unusable or another process holds the index lock.
     */
    explicit IndexStore(Options options);

    /** Checkpoints (best effort) and releases the lock. */
    ~IndexStore();

    IndexStore(const IndexStore &) = delete;
    IndexStore &operator=(const IndexStore &) = delete;

    enum class LookupStatus : uint8_t {
        Hit,
        Miss,
        Corrupt,   ///< Damaged record dropped from the index.
        Collision, ///< A different key's record owns this hash.
        Future,    ///< Record from a newer grammar; slot kept intact.
    };

    struct LookupResult
    {
        LookupStatus status = LookupStatus::Miss;
        std::string payload; ///< Valid only for Hit.
    };

    /** Look @p key up. Lock-free against the writer; never throws. */
    LookupResult lookup(const std::string &key);

    /**
     * Persist @p payload under @p key. Throws DavfError{Io} on an
     * append/insert failure (the caller treats it like a failed legacy
     * publish: count, warn, keep serving from memory). A *checkpoint*
     * failure after a successful append is counted and swallowed.
     */
    void put(const std::string &key, const std::string &payload);

    /**
     * Persist an already-serialized record (migration/absorption —
     * preserves the original bytes exactly). @p record must be the
     * canonical serialized form of (@p key, its payload).
     */
    void putRecord(const std::string &key, const std::string &record);

    /** Force a durability checkpoint now. Throws DavfError{Io}. */
    void checkpoint();

    /**
     * Rewrite the segment file keeping only the records the index
     * serves (the newest frame per key), dropping superseded
     * duplicates, damaged frames, and quarantined-tail leftovers,
     * then rebuild the index over the compact file. Returns segment
     * bytes reclaimed. Crash-safe: the stale index is unlinked before
     * the rewritten file replaces the old one, so dying anywhere
     * reopens into a rebuild of whichever data file the rename left
     * behind. Fires the `compact.rewrite` crash point. Throws
     * DavfError{Io}.
     */
    uint64_t compact();

    /** Enumerate live index slots (fsck/compact cross-checks). */
    void forEachSlot(
        const std::function<void(const BucketSlot &)> &fn) const;

    IndexStoreStats stats() const;

    const std::string &dir() const { return storeDir; }

  private:
    void openOrRecover();
    void rebuild();
    uint64_t replayTail(uint64_t from);
    void repairTornTail(uint64_t offset, uint64_t end);
    void putLocked(const std::string &key, const std::string &record);
    void maybeCheckpointLocked();
    void checkpointLockedFree();
    void refreshShapeGauges();

    Options options;
    std::string storeDir;
    int lockFd = -1;

    mutable std::mutex writerMutex;
    SegmentFile segments;
    HashIndex index;
    uint64_t appendsSinceCheckpoint = 0;

    mutable std::mutex statsMutex;
    IndexStoreStats counters;
};

} // namespace davf::store

#endif // DAVF_STORE_INDEX_STORE_HH
