/**
 * @file
 * The DelayAVF query service: one long-lived process that owns a built
 * Workspace (SoC + golden-captured engine), a persistent result store,
 * and a query scheduler, and answers DelayAVF/sAVF queries from
 * concurrent clients over a Unix-domain socket (see docs/SERVICE.md).
 *
 * A repeated query is served from the store without simulating; a
 * served reply is byte-identical to what a cold `davf_run --json` of
 * the same query prints.
 *
 * Usage:
 *   davf_serve --socket PATH [options]
 *     --socket PATH        Unix-domain socket to listen on (required)
 *     --store-dir DIR      persistent record directory (default: the
 *                          store is memory-only)
 *     --mem-capacity N     in-memory LRU tier entries (default 4096)
 *     --benchmark NAME     workload (default libstrstr)
 *     --ecc                protect the register file with SEC ECC
 *     --sta-period         STA longest path as the clock (default:
 *                          observed-max timing-closure emulation)
 *     --threads N          engine compute threads, 0 = all cores
 *     --no-vector          scalar faulty continuations instead of the
 *                          64-lane bit-parallel path; replies and store
 *                          records are bit-identical either way, so the
 *                          store fingerprint (and every cached record)
 *                          is unaffected (docs/SERVICE.md)
 *     --vector-lanes N     lanes per vector batch, 2..64 (default 64)
 *     --no-vector-tsim     scalar faulted-cone re-simulation
 *     --tsim-lanes N       lanes per timed-simulator batch, 1..64
 *     --isolate MODE       thread (default) or process: compute misses
 *                          in supervised worker processes
 *     --workers N          worker processes for --isolate process
 *     --max-retries N      re-dispatches per shard after a failure
 *     --worker-mem-mb N    RLIMIT_AS cap per worker in MiB, 0 = none
 *
 * The hidden --worker-shard flag turns the process into a campaign
 * worker serving shards over stdin/stdout; it is appended automatically
 * when the scheduler re-executes this binary.
 */

#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "campaign/supervisor.hh"
#include "obs/metrics.hh"
#include "service/protocol.hh"
#include "service/result_store.hh"
#include "service/scheduler.hh"
#include "service/workspace.hh"
#include "util/logging.hh"
#include "util/parse.hh"
#include "util/subprocess.hh"

using namespace davf;
using namespace davf::service;

namespace {

struct Options
{
    std::string socket_path;
    std::string store_dir;
    service::StoreFormat store_format = service::StoreFormat::Auto;
    size_t mem_capacity = 4096;
    WorkspaceSpec workspace;
    unsigned threads = 0;
    bool no_vector = false;
    unsigned vector_lanes = 64;
    bool no_vector_tsim = false;
    unsigned tsim_lanes = 64;
    bool isolate_process = false;
    unsigned workers = 1;
    unsigned max_retries = 2;
    uint64_t worker_mem_mb = 0;
    bool worker_shard = false; ///< Hidden: serve shards over stdio.
};

[[noreturn]] void
usageError(const char *argv0, const std::string &detail)
{
    std::fprintf(stderr,
                 "usage: %s --socket PATH [--store-dir DIR] "
                 "[--store-format auto|legacy|index]\n"
                 "          [--mem-capacity N]\n"
                 "          [--benchmark N] [--ecc] [--sta-period] "
                 "[--threads N]\n"
                 "          [--no-vector] [--vector-lanes N] "
                 "[--no-vector-tsim] [--tsim-lanes N]\n"
                 "          [--isolate thread|process] [--workers N] "
                 "[--max-retries N]\n"
                 "          [--worker-mem-mb N]\n",
                 argv0);
    std::fprintf(stderr, "error: %s\n", detail.c_str());
    std::exit(2);
}

uint64_t
parseU64(const char *argv0, const std::string &flag, const char *text)
{
    try {
        return parseU64Strict(text, flag);
    } catch (const DavfError &error) {
        usageError(argv0, error.what());
    }
}

Options
parse(int argc, char **argv)
{
    Options opts;
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usageError(argv[0], std::string(argv[i]) + " expects a value");
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--socket") {
            opts.socket_path = need(i);
        } else if (arg == "--store-dir") {
            opts.store_dir = need(i);
        } else if (arg == "--store-format") {
            const std::string value = need(i);
            const auto format = service::parseStoreFormat(value);
            if (!format) {
                usageError(argv[0],
                           "--store-format expects auto, legacy, or "
                           "index, got '" + value + "'");
            }
            opts.store_format = *format;
        } else if (arg == "--mem-capacity") {
            opts.mem_capacity =
                static_cast<size_t>(parseU64(argv[0], arg, need(i)));
        } else if (arg == "--benchmark") {
            opts.workspace.benchmark = need(i);
        } else if (arg == "--ecc") {
            opts.workspace.ecc = true;
        } else if (arg == "--sta-period") {
            opts.workspace.staPeriod = true;
        } else if (arg == "--threads") {
            opts.threads =
                static_cast<unsigned>(parseU64(argv[0], arg, need(i)));
        } else if (arg == "--no-vector") {
            opts.no_vector = true;
        } else if (arg == "--no-vector-tsim") {
            opts.no_vector_tsim = true;
        } else if (arg == "--vector-lanes") {
            opts.vector_lanes =
                static_cast<unsigned>(parseU64(argv[0], arg, need(i)));
            if (opts.vector_lanes < 2 || opts.vector_lanes > 64)
                usageError(argv[0], "--vector-lanes must lie in [2, 64]");
        } else if (arg == "--tsim-lanes") {
            opts.tsim_lanes =
                static_cast<unsigned>(parseU64(argv[0], arg, need(i)));
            if (opts.tsim_lanes < 1 || opts.tsim_lanes > 64)
                usageError(argv[0], "--tsim-lanes must lie in [1, 64]");
        } else if (arg == "--isolate") {
            const std::string mode = need(i);
            if (mode == "process")
                opts.isolate_process = true;
            else if (mode == "thread")
                opts.isolate_process = false;
            else
                usageError(argv[0], "--isolate expects 'thread' or "
                                    "'process', got '" + mode + "'");
        } else if (arg == "--workers") {
            opts.workers =
                static_cast<unsigned>(parseU64(argv[0], arg, need(i)));
            if (opts.workers == 0)
                usageError(argv[0], "--workers must be >= 1");
        } else if (arg == "--max-retries") {
            opts.max_retries =
                static_cast<unsigned>(parseU64(argv[0], arg, need(i)));
        } else if (arg == "--worker-mem-mb") {
            opts.worker_mem_mb = parseU64(argv[0], arg, need(i));
        } else if (arg == "--worker-shard") {
            opts.worker_shard = true;
        } else {
            usageError(argv[0], "unknown flag '" + arg + "'");
        }
    }
    if (!opts.worker_shard && opts.socket_path.empty())
        usageError(argv[0], "--socket is required");
    return opts;
}

/** One client connection: a reader loop plus one in-flight query. */
class Connection
{
  public:
    Connection(int the_fd, QueryScheduler &the_scheduler,
               const WorkspaceSpec &the_spec)
        : fd(the_fd), scheduler(&the_scheduler), spec(&the_spec)
    {}

    ~Connection()
    {
        cancel = true;
        if (worker.joinable())
            worker.join();
        ::close(fd);
    }

    void
    serve()
    {
        std::string payload;
        while (readFrameFd(fd, payload)) {
            Result<ClientFrame> frame = parseClientFrame(payload);
            if (!frame) {
                sendError(frame.error());
                continue;
            }
            switch (frame.value().verb) {
              case ClientFrame::Verb::Query:
                startQuery(std::move(frame.value().query));
                break;
              case ClientFrame::Verb::Cancel:
                // No direct reply: the in-flight query (if any) answers
                // with "err timeout query cancelled".
                cancel = true;
                break;
              case ClientFrame::Verb::Stats: {
                ServerReply reply;
                reply.ok = true;
                reply.tag = "stats";
                reply.body = scheduler->statsJson();
                send(reply);
                break;
              }
              case ClientFrame::Verb::Quit: {
                ServerReply reply;
                reply.ok = true;
                reply.tag = "bye";
                send(reply);
                return;
              }
            }
        }
    }

  private:
    void
    send(const ServerReply &reply)
    {
        const std::lock_guard<std::mutex> lock(writeMutex);
        try {
            writeFrameFd(fd, serializeServerReply(reply));
        } catch (const DavfError &error) {
            // The client hung up mid-reply; the reader loop will see
            // EOF and wind the connection down.
            davf_warn("client write failed: ", error.what());
        }
    }

    void
    sendError(const DavfError &error)
    {
        ServerReply reply;
        reply.errorKind = std::string(errorKindName(error.kind()));
        reply.message = error.what();
        send(reply);
    }

    void
    startQuery(QuerySpec query)
    {
        if (busy.load()) {
            sendError(DavfError(ErrorKind::BadArgument,
                                "a query is already in flight on this "
                                "connection"));
            return;
        }
        if (worker.joinable())
            worker.join();
        busy = true;
        cancel = false;
        worker = std::thread([this, query = std::move(query)] {
            if (!(query.workspace == *spec)) {
                busy = false;
                sendError(DavfError(
                    ErrorKind::BadArgument,
                    "workspace mismatch: this server runs '"
                        + serializeWorkspaceSpec(*spec) + "', query "
                        + "names '"
                        + serializeWorkspaceSpec(query.workspace) + "'"));
                return;
            }
            Result<QueryScheduler::QueryReply> result =
                scheduler->run(query, &cancel);
            busy = false;
            if (!result) {
                sendError(result.error());
                return;
            }
            ServerReply reply;
            reply.ok = true;
            reply.tag = "report";
            reply.body = std::move(result.value().reportJson);
            send(reply);
        });
    }

    int fd;
    QueryScheduler *scheduler;
    const WorkspaceSpec *spec;
    std::mutex writeMutex;
    std::atomic<bool> cancel{false};
    std::atomic<bool> busy{false};
    std::thread worker;
};

int
runTool(int argc, char **argv)
{
    const Options opts = parse(argc, argv);

    // A client that vanishes mid-reply must surface as EPIPE on that
    // connection's write, not a process-fatal SIGPIPE for the whole
    // server. (The Supervisor constructor also sets this, but only in
    // --isolate process mode.)
    ::signal(SIGPIPE, SIG_IGN);

    // The server always collects metrics: a long-lived process wants
    // its registry live so the `stats` verb can report it, and the
    // striped counters are too cheap to merit a knob here.
    obs::MetricsRegistry::setEnabled(true);

    std::fprintf(stderr,
                 "building workspace (%s, %s regfile, %s clock)...\n",
                 opts.workspace.benchmark.c_str(),
                 opts.workspace.ecc ? "ECC" : "plain",
                 opts.workspace.staPeriod ? "STA" : "observed-max");
    Workspace workspace(opts.workspace);

    // Bit-parallel batching is a pure speed knob: it never changes a
    // result byte, so it does not enter the workspace fingerprint and
    // existing store records stay valid.
    workspace.engine().setVectorMode(!opts.no_vector, opts.vector_lanes);
    workspace.engine().setTsimVectorMode(!opts.no_vector_tsim,
                                         opts.tsim_lanes);

    // Hidden worker mode: same workspace build, then serve shard
    // requests from the scheduler's supervisor over stdin/stdout.
    if (opts.worker_shard) {
        return runCampaignWorker(workspace.engine(),
                                 workspace.structures());
    }

    std::fprintf(stderr, "golden: %llu cycles, fingerprint %s\n",
                 static_cast<unsigned long long>(
                     workspace.engine().goldenCycles()),
                 workspace.fingerprint().c_str());

    ResultStore::Options store_options;
    store_options.dir = opts.store_dir;
    store_options.format = opts.store_format;
    store_options.memCapacity = opts.mem_capacity;
    ResultStore store(store_options);

    QueryScheduler::Options sched_options;
    sched_options.benchmark = opts.workspace.benchmark;
    sched_options.structureLabel = opts.workspace.ecc ? " (ECC)" : "";
    sched_options.threads = opts.threads;
    if (opts.isolate_process) {
        // Workers re-execute this binary with the same workspace flags
        // (so they build the same engine) plus the hidden worker flag.
        sched_options.workerArgv.push_back(Subprocess::selfExePath());
        sched_options.workerArgv.push_back("--benchmark");
        sched_options.workerArgv.push_back(opts.workspace.benchmark);
        if (opts.workspace.ecc)
            sched_options.workerArgv.push_back("--ecc");
        if (opts.workspace.staPeriod)
            sched_options.workerArgv.push_back("--sta-period");
        if (opts.no_vector)
            sched_options.workerArgv.push_back("--no-vector");
        if (opts.no_vector_tsim)
            sched_options.workerArgv.push_back("--no-vector-tsim");
        if (opts.tsim_lanes != 64) {
            sched_options.workerArgv.push_back("--tsim-lanes");
            sched_options.workerArgv.push_back(
                std::to_string(opts.tsim_lanes));
        }
        if (opts.vector_lanes != 64) {
            sched_options.workerArgv.push_back("--vector-lanes");
            sched_options.workerArgv.push_back(
                std::to_string(opts.vector_lanes));
        }
        sched_options.workerArgv.push_back("--worker-shard");
        sched_options.workers = opts.workers;
        sched_options.maxRetries = opts.max_retries;
        sched_options.workerMemMb = opts.worker_mem_mb;
    }
    QueryScheduler scheduler(workspace.engine(), workspace.structures(),
                             workspace.fingerprint(), store,
                             std::move(sched_options));

    // Bind last, so the socket file appearing means "ready to serve".
    const int listen_fd = listenUnix(opts.socket_path);
    std::fprintf(stderr, "listening on %s\n", opts.socket_path.c_str());

    while (true) {
        const int client_fd = ::accept(listen_fd, nullptr, nullptr);
        if (client_fd < 0) {
            // A dialer that gave up between connect and accept
            // (ECONNABORTED) — or a transient kernel shortage — is
            // that connection's problem, not the server's.
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            if (errno == EMFILE || errno == ENFILE) {
                // Out of descriptors: shed load instead of dying; the
                // pause lets in-flight connections finish and release.
                davf_warn("accept: ", std::strerror(errno),
                          "; backing off");
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(100));
                continue;
            }
            davf_throw(ErrorKind::Io, "accept: ", std::strerror(errno));
        }
        std::thread([client_fd, &scheduler, &opts] {
            try {
                Connection connection(client_fd, scheduler,
                                      opts.workspace);
                connection.serve();
            } catch (const DavfError &error) {
                // A torn frame or dead socket ends this client only.
                davf_warn("connection closed: ", error.what());
            }
        }).detach();
    }
}

} // namespace

int
main(int argc, char **argv)
{
    return guardedMain([&] { return runTool(argc, argv); });
}
