#include "stop.hh"

#include <csignal>

#include <unistd.h>

namespace davf {

namespace {

std::atomic<bool> g_stop{false};

extern "C" void
stopSignalHandler(int)
{
    // Second signal while already stopping: force-exit. Only
    // async-signal-safe calls are allowed here.
    if (g_stop.exchange(true))
        ::_exit(130);
}

} // namespace

std::atomic<bool> &
stopFlag()
{
    return g_stop;
}

void
resetStopFlag()
{
    g_stop.store(false);
}

const std::atomic<bool> &
installStopHandlers()
{
    struct sigaction action = {};
    action.sa_handler = stopSignalHandler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0; // No SA_RESTART: interrupt blocking IO too.
    ::sigaction(SIGINT, &action, nullptr);
    ::sigaction(SIGTERM, &action, nullptr);
    return g_stop;
}

} // namespace davf
