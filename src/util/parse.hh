/**
 * @file
 * Strict numeric parsing for CLI flags and wire protocols.
 *
 * The libc conversions (`strtoull`, `atof`, ...) accept trailing
 * garbage ("4x" parses as 4) and silently saturate or wrap on overflow
 * ("99999999999999999999" becomes ULLONG_MAX), which turns a typo'd
 * flag into a silently different campaign. Every flag value in the
 * tools goes through these helpers instead: the whole token must be a
 * number, the number must fit, and anything else throws
 * ErrorKind::BadArgument naming the offending text.
 */

#ifndef DAVF_UTIL_PARSE_HH
#define DAVF_UTIL_PARSE_HH

#include <cstdint>
#include <string>

namespace davf {

/**
 * Parse @p text as a base-10 unsigned 64-bit integer. The entire token
 * must be digits (no sign, no whitespace, no trailing characters) and
 * the value must fit in uint64_t. @p what names the flag in the error
 * message ("--workers").
 */
uint64_t parseU64Strict(const std::string &text, const std::string &what);

/**
 * parseU64Strict() plus an inclusive range check; @p lo <= value <= @p hi
 * or ErrorKind::BadArgument.
 */
uint64_t parseU64InRange(const std::string &text, const std::string &what,
                         uint64_t lo, uint64_t hi);

/**
 * Parse @p text as a finite double. The entire token must parse (an
 * optional sign, digits, fraction, exponent — whatever strtod accepts,
 * but with nothing left over) and the result must be finite; "nan",
 * "inf" and overflowing exponents are rejected.
 */
double parseDoubleStrict(const std::string &text, const std::string &what);

} // namespace davf

#endif // DAVF_UTIL_PARSE_HH
