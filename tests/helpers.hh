/**
 * @file
 * Shared test fixtures: a seeded random sequential-circuit generator used
 * by the property tests (STA bounds, timed-vs-untimed equivalence, and
 * the two-step-vs-brute-force DelayACE exactness check).
 */

#ifndef DAVF_TESTS_HELPERS_HH
#define DAVF_TESTS_HELPERS_HH

#include <memory>
#include <vector>

#include "builder/builder.hh"
#include "core/workload.hh"
#include "netlist/netlist.hh"
#include "util/rng.hh"

namespace davf::test {

/** A randomly generated clocked circuit with an attached trace sink. */
struct RandomCircuit
{
    std::unique_ptr<Netlist> netlist;
    CellId sinkCell = kInvalidId;
    uint64_t numCycles = 0;

    /** Primary inputs, when requested (stimulus hooks for sim tests). */
    std::vector<NetId> inputs;

    /** Every flop state element, in netlist order (flip targets). */
    std::vector<StateElemId> flops;

    std::unique_ptr<TraceWorkload> workload;
};

/**
 * Build a random sequential circuit: @p num_flops flops with random
 * reset values, a random combinational cloud of @p num_gates primitive
 * gates (acyclic by construction), random flop feedback, and a trace
 * sink observing a random subset of nets every cycle. All cells carry the
 * prefix "rnd/" so the whole circuit can be treated as one structure.
 * With @p num_inputs > 0, that many primary inputs join the net pool the
 * gate cloud draws from, so tests can drive external stimulus.
 */
inline RandomCircuit
makeRandomCircuit(uint64_t seed, unsigned num_flops = 12,
                  unsigned num_gates = 60, uint64_t num_cycles = 24,
                  unsigned num_inputs = 0)
{
    Rng rng(seed);
    RandomCircuit circuit;
    circuit.netlist = std::make_unique<Netlist>();
    Netlist &nl = *circuit.netlist;
    ModuleBuilder b(nl);
    b.pushScope("rnd");

    // Flop Q nets come first; D inputs are connected at the end.
    std::vector<NetId> nets;
    Bus flop_d;
    for (unsigned i = 0; i < num_flops; ++i) {
        const NetId d = b.freshNet("ffd" + std::to_string(i));
        const NetId q = b.dff(d, rng.chance(0.5),
                              "ff" + std::to_string(i));
        flop_d.push_back(d);
        nets.push_back(q);
    }

    for (unsigned i = 0; i < num_inputs; ++i) {
        const NetId in = b.input("in" + std::to_string(i));
        circuit.inputs.push_back(in);
        nets.push_back(in);
    }

    // Random acyclic combinational cloud.
    const CellType kinds[] = {CellType::Buf,   CellType::Inv,
                              CellType::And2,  CellType::Or2,
                              CellType::Nand2, CellType::Nor2,
                              CellType::Xor2,  CellType::Xnor2,
                              CellType::Mux2};
    for (unsigned i = 0; i < num_gates; ++i) {
        const CellType kind = kinds[rng.below(std::size(kinds))];
        auto pick = [&]() { return nets[rng.below(nets.size())]; };
        NetId out;
        switch (cellNumInputs(kind)) {
          case 1:
            out = kind == CellType::Buf ? b.buf(pick()) : b.inv(pick());
            break;
          case 2: {
            const NetId a = pick();
            const NetId c = pick();
            switch (kind) {
              case CellType::And2:  out = b.and2(a, c); break;
              case CellType::Or2:   out = b.or2(a, c); break;
              case CellType::Nand2: out = b.nand2(a, c); break;
              case CellType::Nor2:  out = b.nor2(a, c); break;
              case CellType::Xor2:  out = b.xor2(a, c); break;
              default:              out = b.xnor2(a, c); break;
            }
            break;
          }
          default:
            out = b.mux(pick(), pick(), pick());
            break;
        }
        nets.push_back(out);
    }

    // Flop feedback from random nets.
    for (unsigned i = 0; i < num_flops; ++i)
        b.connect(flop_d[i], nets[rng.below(nets.size())]);

    // Trace sink observing a random subset of nets (always valid).
    const unsigned watch = 4;
    Bus sink_inputs;
    for (unsigned i = 0; i < watch; ++i)
        sink_inputs.push_back(nets[rng.below(nets.size())]);
    sink_inputs.push_back(b.constant(true));
    circuit.sinkCell = nl.addBehavioral(
        "rnd/sink", std::make_shared<TraceSinkModel>(watch), sink_inputs,
        {});

    b.popScope();
    nl.finalize();

    circuit.flops = nl.flopsByPrefix("rnd/");
    circuit.numCycles = num_cycles;
    circuit.workload = std::make_unique<TraceWorkload>(circuit.sinkCell,
                                                       num_cycles);
    return circuit;
}

} // namespace davf::test

#endif // DAVF_TESTS_HELPERS_HH
