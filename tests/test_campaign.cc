/**
 * @file
 * Tests for the resilience layer:
 *
 *  - the recoverable error taxonomy (DavfError kinds, Result<T>,
 *    library errors that used to exit());
 *  - atomic file writes;
 *  - checkpoint serialization: bit-exact double round-trips, rejection
 *    of corrupt/mismatched journals;
 *  - campaign checkpoint/resume: an interrupted-then-resumed sweep
 *    reproduces the uninterrupted journal and CSV byte-for-byte, at a
 *    different thread count;
 *  - per-injection fault isolation: timeouts become skip accounting,
 *    excessive failure rates fail the cell but not the campaign;
 *  - the cooperative SIGINT/SIGTERM stop flag;
 *  - lenient loading of journals with a torn final line, plus a
 *    fuzz-ish corpus over the checkpoint/shard/quarantine parsers;
 *  - supervised process isolation: bit-identity with thread mode at
 *    any worker count, and crash -> retry -> bisect -> quarantine.
 *
 * The binary re-executes itself as a campaign worker when invoked with
 * --campaign-worker (rebuilding the same fixture engine), so it has
 * its own main() instead of linking gtest_main.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>

#include "src/campaign/campaign.hh"
#include "src/campaign/checkpoint.hh"
#include "src/campaign/stop.hh"
#include "src/campaign/supervisor.hh"
#include "src/core/shard.hh"
#include "src/core/vulnerability.hh"
#include "src/isa/benchmarks.hh"
#include "src/util/atomic_file.hh"
#include "src/util/error.hh"
#include "src/util/rng.hh"
#include "src/util/subprocess.hh"
#include "tests/helpers.hh"

namespace davf {
namespace {

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "davf_test_"
        + std::to_string(::getpid()) + "_" + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream file(path, std::ios::binary);
    EXPECT_TRUE(static_cast<bool>(file)) << path;
    std::ostringstream os;
    os << file.rdbuf();
    return os.str();
}

// ---------------------------------------------------------------- errors

TEST(ErrorTaxonomy, KindsHaveStableNames)
{
    EXPECT_EQ(errorKindName(ErrorKind::Timeout), "timeout");
    EXPECT_EQ(errorKindName(ErrorKind::NotFound), "not-found");
    EXPECT_EQ(errorKindName(ErrorKind::ExcessiveFailures),
              "excessive-failures");
}

TEST(ErrorTaxonomy, ResultCarriesValueOrError)
{
    const auto ok = Result<int>::Ok(42);
    EXPECT_TRUE(ok.ok());
    EXPECT_EQ(ok.value(), 42);

    const auto err = Result<int>::Err(ErrorKind::Io, "disk on fire");
    EXPECT_FALSE(err.ok());
    EXPECT_EQ(err.error().kind(), ErrorKind::Io);
    EXPECT_THROW(err.value(), DavfError);
}

TEST(ErrorTaxonomy, UnknownBenchmarkThrowsNotFound)
{
    // Used to davf_fatal (uncatchable); a sweep driver must be able to
    // catch it.
    try {
        beebsBenchmark("no-such-benchmark");
        FAIL() << "expected DavfError";
    } catch (const DavfError &error) {
        EXPECT_EQ(error.kind(), ErrorKind::NotFound);
    }
}

TEST(ErrorTaxonomy, OutOfRangeDelayThrows)
{
    const auto circuit = test::makeRandomCircuit(3, 6, 24, 8);
    VulnerabilityEngine engine(*circuit.netlist,
                               CellLibrary::defaultLibrary(),
                               *circuit.workload);
    StructureRegistry registry(*circuit.netlist);
    const Structure &structure = registry.add("Rnd", "rnd/");
    try {
        engine.delayAvf(structure, 5.0);
        FAIL() << "expected DavfError";
    } catch (const DavfError &error) {
        EXPECT_EQ(error.kind(), ErrorKind::OutOfRange);
    }
}

// ----------------------------------------------------------- atomic file

TEST(AtomicFile, WritesContentsAndLeavesNoTemporary)
{
    const std::string path = tempPath("atomic.txt");
    writeFileAtomic(path, "first");
    EXPECT_EQ(slurp(path), "first");
    writeFileAtomic(path, "second");
    EXPECT_EQ(slurp(path), "second");
    // The temporary is pid-suffixed; it must be gone after the rename.
    std::ifstream tmp(path + ".tmp." + std::to_string(::getpid()));
    EXPECT_FALSE(static_cast<bool>(tmp));
    std::remove(path.c_str());
}

TEST(AtomicFile, UnwritablePathThrowsIo)
{
    try {
        writeFileAtomic("/no-such-dir-davf/x.txt", "y");
        FAIL() << "expected DavfError";
    } catch (const DavfError &error) {
        EXPECT_EQ(error.kind(), ErrorKind::Io);
    }
}

// ------------------------------------------------------------ checkpoint

Checkpoint
sampleCheckpoint()
{
    Checkpoint checkpoint;
    checkpoint.configHash = "feedc0de";

    CheckpointCell davf_cell;
    davf_cell.key = {"davf", "md5", "ALU", canonicalDelay(1.0 / 3.0)};
    davf_cell.davf.delayAvf = 1.0 / 3.0;
    davf_cell.davf.orDelayAvf = 0.1;
    davf_cell.davf.staticWireFraction = 5e-324; // subnormal
    davf_cell.davf.dynamicWireFraction = 0.25;
    davf_cell.davf.injections = 1234;
    davf_cell.davf.sdc = 3;
    davf_cell.davf.skippedErrors = 2;
    davf_cell.davf.skipReasons = {{"timeout", 1}, {"exception", 1}};
    checkpoint.cells.push_back(davf_cell);

    CheckpointCell failed_cell;
    failed_cell.key = {"davf", "md5", "LSU", canonicalDelay(0.5)};
    failed_cell.failed = true;
    failed_cell.failReason = "structure 'LSU': too many failures";
    checkpoint.cells.push_back(failed_cell);

    CheckpointCell savf_cell;
    savf_cell.key = {"savf", "md5", "ALU", canonicalDelay(0.0)};
    savf_cell.savf.savf = 0.7;
    savf_cell.savf.injections = 64;
    savf_cell.savf.aceInjections = 44;
    checkpoint.cells.push_back(savf_cell);

    checkpoint.hasPartial = true;
    checkpoint.partialKey = {"davf", "md5", "Regfile",
                             canonicalDelay(0.7)};
    InjectionCycleOutcome outcome;
    outcome.cycle = 17;
    outcome.injections = 40;
    outcome.delayAce = 4;
    outcome.skippedErrors = 1;
    outcome.skipReasons = {{"timeout", 1}};
    outcome.wireDyn = {1, 0, 1, 1};
    outcome.wireAce = {0, 0, 1, 0};
    checkpoint.partialCycles.push_back(outcome);
    return checkpoint;
}

TEST(CheckpointFormat, RoundTripsBitExactly)
{
    const Checkpoint before = sampleCheckpoint();
    const std::string text = serializeCheckpoint(before);
    const Result<Checkpoint> parsed = parseCheckpoint(text);
    ASSERT_TRUE(parsed.ok()) << parsed.error().what();
    const Checkpoint &after = parsed.value();

    EXPECT_EQ(after.configHash, before.configHash);
    ASSERT_EQ(after.cells.size(), before.cells.size());
    // Hexfloat serialization must be bit-exact, including subnormals.
    EXPECT_EQ(after.cells[0].davf.delayAvf, before.cells[0].davf.delayAvf);
    EXPECT_EQ(after.cells[0].davf.staticWireFraction, 5e-324);
    EXPECT_EQ(after.cells[0].davf.skipReasons,
              before.cells[0].davf.skipReasons);
    EXPECT_TRUE(after.cells[1].failed);
    EXPECT_EQ(after.cells[1].failReason, before.cells[1].failReason);
    EXPECT_EQ(after.cells[2].savf.aceInjections, 44u);
    ASSERT_TRUE(after.hasPartial);
    EXPECT_TRUE(after.partialKey == before.partialKey);
    ASSERT_EQ(after.partialCycles.size(), 1u);
    EXPECT_TRUE(after.partialCycles[0] == before.partialCycles[0]);

    // Serialization is deterministic.
    EXPECT_EQ(serializeCheckpoint(after), text);
}

TEST(CheckpointFormat, RejectsCorruptInput)
{
    EXPECT_FALSE(parseCheckpoint("").ok());
    EXPECT_FALSE(parseCheckpoint("davf-checkpoint v999\nend\n").ok());
    EXPECT_FALSE(
        parseCheckpoint("davf-checkpoint v1\nconfig abc\n").ok())
        << "truncated journal (no end record) must be rejected";
    EXPECT_FALSE(
        parseCheckpoint("davf-checkpoint v1\nconfig abc\nwat\nend\n")
            .ok());
    EXPECT_FALSE(
        parseCheckpoint(
            "davf-checkpoint v1\nconfig abc\ncell davf b s 0.1 ok\nend\n")
            .ok())
        << "cell with missing result fields must be rejected";
    EXPECT_FALSE(parseCheckpoint("davf-checkpoint v1\nend\n").ok())
        << "journal without a config record must be rejected";
}

TEST(CheckpointFormat, SaveLoadRoundTrips)
{
    const std::string path = tempPath("journal.ckpt");
    const Checkpoint before = sampleCheckpoint();
    saveCheckpoint(path, before);
    const Result<Checkpoint> loaded = loadCheckpoint(path);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(serializeCheckpoint(loaded.value()),
              serializeCheckpoint(before));
    std::remove(path.c_str());

    EXPECT_FALSE(loadCheckpoint(tempPath("absent.ckpt")).ok());
}

// -------------------------------------------------------------- campaign

struct CampaignFixture
{
    test::RandomCircuit circuit;
    std::unique_ptr<VulnerabilityEngine> engine;
    std::unique_ptr<StructureRegistry> registry;

    explicit CampaignFixture(uint64_t seed = 11)
        : circuit(test::makeRandomCircuit(seed, 8, 40, 12))
    {
        engine = std::make_unique<VulnerabilityEngine>(
            *circuit.netlist, CellLibrary::defaultLibrary(),
            *circuit.workload);
        registry = std::make_unique<StructureRegistry>(*circuit.netlist);
        registry->add("Rnd", "rnd/");
    }

    CampaignOptions options() const
    {
        CampaignOptions opts;
        opts.benchmark = "rndtrace";
        opts.structures = {"Rnd"};
        opts.delays = {0.3, 0.6, 0.9};
        opts.runSavf = true;
        opts.sampling.maxInjectionCycles = 4;
        opts.sampling.maxWires = 30;
        opts.sampling.maxFlops = 8;
        opts.sampling.seed = 5;
        return opts;
    }
};

TEST(Campaign, UnknownStructureThrowsNotFound)
{
    CampaignFixture fixture;
    CampaignOptions opts = fixture.options();
    opts.structures = {"NoSuchUnit"};
    Campaign campaign(*fixture.engine, *fixture.registry, opts);
    try {
        campaign.run();
        FAIL() << "expected DavfError";
    } catch (const DavfError &error) {
        EXPECT_EQ(error.kind(), ErrorKind::NotFound);
    }
}

TEST(Campaign, ResumeRejectsForeignJournal)
{
    CampaignFixture fixture;
    const std::string path = tempPath("foreign.ckpt");
    Checkpoint foreign;
    foreign.configHash = "0123456789abcdef"; // not this campaign's hash
    saveCheckpoint(path, foreign);

    CampaignOptions opts = fixture.options();
    opts.checkpointPath = path;
    opts.resume = true;
    Campaign campaign(*fixture.engine, *fixture.registry, opts);
    try {
        campaign.run();
        FAIL() << "expected DavfError";
    } catch (const DavfError &error) {
        EXPECT_EQ(error.kind(), ErrorKind::BadArgument);
    }
    std::remove(path.c_str());
}

TEST(Campaign, InterruptedResumeIsBitIdenticalAcrossThreadCounts)
{
    const std::string ref_ckpt = tempPath("ref.ckpt");
    const std::string ref_csv = tempPath("ref.csv");
    const std::string cut_ckpt = tempPath("cut.ckpt");
    const std::string cut_csv = tempPath("cut.csv");

    // Reference: uninterrupted, 1 thread.
    {
        CampaignFixture fixture;
        CampaignOptions opts = fixture.options();
        opts.sampling.threads = 1;
        opts.checkpointPath = ref_ckpt;
        opts.csvPath = ref_csv;
        Campaign campaign(*fixture.engine, *fixture.registry, opts);
        const CampaignSummary summary = campaign.run();
        EXPECT_FALSE(summary.interrupted);
        EXPECT_EQ(summary.cellsComputed, 4u); // 3 delays + sAVF
        EXPECT_EQ(summary.cellsFailed, 0u);
    }

    // Interrupted mid-sweep: raise the stop flag after a few journal
    // writes (journal writes happen after every injection cycle, so
    // this lands inside a cell).
    std::atomic<bool> stop{false};
    uint64_t saves = 0;
    {
        CampaignFixture fixture;
        CampaignOptions opts = fixture.options();
        opts.sampling.threads = 2;
        opts.checkpointPath = cut_ckpt;
        opts.csvPath = cut_csv;
        opts.stopFlag = &stop;
        opts.onCheckpointSaved = [&] {
            if (++saves == 3)
                stop.store(true);
        };
        Campaign campaign(*fixture.engine, *fixture.registry, opts);
        const CampaignSummary summary = campaign.run();
        EXPECT_TRUE(summary.interrupted);
        EXPECT_LT(summary.cellsComputed, 4u);
    }
    ASSERT_GE(saves, 3u);

    // Resume at a different thread count; result must be byte-identical
    // to the uninterrupted reference — journal and CSV.
    {
        CampaignFixture fixture;
        CampaignOptions opts = fixture.options();
        opts.sampling.threads = 3;
        opts.checkpointPath = cut_ckpt;
        opts.csvPath = cut_csv;
        opts.resume = true;
        Campaign campaign(*fixture.engine, *fixture.registry, opts);
        const CampaignSummary summary = campaign.run();
        EXPECT_FALSE(summary.interrupted);
        EXPECT_EQ(summary.cells.size(), 4u);
        EXPECT_GT(summary.cellsFromCheckpoint
                      + summary.cellsComputed, 0u);
    }

    EXPECT_EQ(slurp(cut_ckpt), slurp(ref_ckpt));
    EXPECT_EQ(slurp(cut_csv), slurp(ref_csv));

    // Resuming a fully complete journal recomputes nothing.
    {
        CampaignFixture fixture;
        CampaignOptions opts = fixture.options();
        opts.checkpointPath = ref_ckpt;
        opts.resume = true;
        Campaign campaign(*fixture.engine, *fixture.registry, opts);
        const CampaignSummary summary = campaign.run();
        EXPECT_EQ(summary.cellsComputed, 0u);
        EXPECT_EQ(summary.cellsFromCheckpoint, 4u);
    }

    for (const auto &path : {ref_ckpt, ref_csv, cut_ckpt, cut_csv})
        std::remove(path.c_str());
}

TEST(Campaign, TimeoutsBecomeSkipsNotCrashes)
{
    CampaignFixture fixture;
    CampaignOptions opts = fixture.options();
    opts.delays = {0.6};
    opts.runSavf = false;
    // An impossible per-injection budget: every continuation times out.
    opts.injectionTimeoutMs = 1e-6;
    opts.maxFailureRate = 1.0; // tolerate them all
    Campaign campaign(*fixture.engine, *fixture.registry, opts);
    const CampaignSummary summary = campaign.run();
    ASSERT_EQ(summary.cells.size(), 1u);
    const DelayAvfResult &result = summary.cells[0].davf;
    EXPECT_FALSE(summary.cells[0].failed);
    EXPECT_GT(result.skippedErrors, 0u);
    EXPECT_GT(result.skipReasons.count("timeout"), 0u);
    // Skipped injections leave the denominator.
    EXPECT_LE(result.skippedErrors, result.injections);
}

TEST(Campaign, ExcessiveFailuresFailTheCellNotTheCampaign)
{
    CampaignFixture fixture;
    CampaignOptions opts = fixture.options();
    opts.runSavf = false;
    opts.injectionTimeoutMs = 1e-6; // force a ~100% failure rate
    opts.maxFailureRate = 0.01;
    Campaign campaign(*fixture.engine, *fixture.registry, opts);
    const CampaignSummary summary = campaign.run();
    ASSERT_EQ(summary.cells.size(), 3u);
    EXPECT_EQ(summary.cellsFailed, 3u);
    for (const CampaignCellResult &cell : summary.cells) {
        EXPECT_TRUE(cell.failed);
        EXPECT_NE(cell.failReason.find("injections failed"),
                  std::string::npos)
            << cell.failReason;
    }
    EXPECT_FALSE(summary.interrupted)
        << "failed cells must not abort the sweep";
}

TEST(Campaign, PresetStopFlagInterruptsBeforeWork)
{
    CampaignFixture fixture;
    std::atomic<bool> stop{true};
    CampaignOptions opts = fixture.options();
    opts.stopFlag = &stop;
    Campaign campaign(*fixture.engine, *fixture.registry, opts);
    const CampaignSummary summary = campaign.run();
    EXPECT_TRUE(summary.interrupted);
    EXPECT_EQ(summary.cellsComputed, 0u);
}

TEST(StopFlag, SigintRaisesTheFlagCooperatively)
{
    const std::atomic<bool> &flag = installStopHandlers();
    resetStopFlag();
    EXPECT_FALSE(flag.load());
    ::raise(SIGINT); // first signal: cooperative, no process exit
    EXPECT_TRUE(flag.load());
    resetStopFlag();
    EXPECT_FALSE(flag.load());
}

// --------------------------------------------- lenient checkpoint loading

TEST(CheckpointFormat, LenientLoadDropsTornFinalLine)
{
    const std::string text = serializeCheckpoint(sampleCheckpoint());
    // Tear the tail mid-record: drop "end\n" plus part of the final
    // pcycle line, the shape a crashed copy or torn write leaves.
    const std::string torn = text.substr(0, text.size() - 12);

    EXPECT_FALSE(parseCheckpoint(torn).ok())
        << "strict parsing must still reject a torn journal";

    CheckpointLoadStats stats;
    const Result<Checkpoint> parsed = parseCheckpoint(torn, &stats);
    ASSERT_TRUE(parsed.ok()) << parsed.error().what();
    EXPECT_TRUE(stats.truncatedTail);
    EXPECT_FALSE(stats.droppedLine.empty());
    // Everything before the torn line survives.
    EXPECT_EQ(parsed.value().configHash, "feedc0de");
    EXPECT_EQ(parsed.value().cells.size(), 3u);
}

TEST(CheckpointFormat, LenientLoadToleratesOnlyTheFinalLine)
{
    // A damaged line in the *middle* is corruption, not a torn write:
    // both strict and lenient parsing must reject it.
    std::string text = serializeCheckpoint(sampleCheckpoint());
    const size_t pos = text.find("\ncell ");
    ASSERT_NE(pos, std::string::npos);
    text.insert(pos + 1, "cell davf broken\n");
    EXPECT_FALSE(parseCheckpoint(text).ok());
    CheckpointLoadStats stats;
    EXPECT_FALSE(parseCheckpoint(text, &stats).ok());
}

TEST(CheckpointFormat, LenientLoadReportsMissingEnd)
{
    std::string text = serializeCheckpoint(sampleCheckpoint());
    const size_t end_pos = text.rfind("end\n");
    ASSERT_NE(end_pos, std::string::npos);
    text.resize(end_pos); // intact records, missing end marker

    EXPECT_FALSE(parseCheckpoint(text).ok());
    CheckpointLoadStats stats;
    const Result<Checkpoint> parsed = parseCheckpoint(text, &stats);
    ASSERT_TRUE(parsed.ok());
    EXPECT_TRUE(stats.missingEnd);
    EXPECT_FALSE(stats.truncatedTail);
    EXPECT_EQ(parsed.value().cells.size(), 3u);
}

TEST(CheckpointFormat, FuzzedInputNeverCrashesTheParser)
{
    const std::string text = serializeCheckpoint(sampleCheckpoint());

    // Every truncation point, strict and lenient: the parser must
    // return a Result either way, never crash or throw.
    for (size_t n = 0; n <= text.size(); ++n) {
        const std::string prefix = text.substr(0, n);
        (void)parseCheckpoint(prefix);
        CheckpointLoadStats stats;
        (void)parseCheckpoint(prefix, &stats);
    }

    // Deterministic byte mutations (flips, splices, truncations).
    Rng rng(0xfadedfacade);
    for (int round = 0; round < 400; ++round) {
        std::string mutated = text;
        const unsigned edits = 1 + unsigned(rng.below(4));
        for (unsigned e = 0; e < edits; ++e) {
            const size_t pos = size_t(rng.below(mutated.size()));
            switch (rng.below(3)) {
              case 0:
                mutated[pos] = char(rng.below(256));
                break;
              case 1:
                mutated.insert(pos, 1, char(rng.below(256)));
                break;
              default:
                mutated.erase(pos, 1 + size_t(rng.below(8)));
                break;
            }
            if (mutated.empty())
                mutated.push_back('x');
        }
        (void)parseCheckpoint(mutated);
        CheckpointLoadStats stats;
        (void)parseCheckpoint(mutated, &stats);
    }
}

TEST(Campaign, ResumeSurvivesTornFinalJournalLine)
{
    const std::string ref_ckpt = tempPath("torn_ref.ckpt");
    const std::string ckpt = tempPath("torn.ckpt");

    // Reference: a complete sweep.
    {
        CampaignFixture fixture;
        CampaignOptions opts = fixture.options();
        opts.checkpointPath = ref_ckpt;
        Campaign campaign(*fixture.engine, *fixture.registry, opts);
        const CampaignSummary summary = campaign.run();
        EXPECT_FALSE(summary.interrupted);
        EXPECT_EQ(summary.cellsFailed, 0u);
    }

    // The same journal with its tail torn mid-line.
    const std::string reference = slurp(ref_ckpt);
    const size_t end_pos = reference.rfind("end\n");
    ASSERT_NE(end_pos, std::string::npos);
    ASSERT_GT(end_pos, 8u);
    writeFileAtomic(ckpt, reference.substr(0, end_pos - 7));

    EXPECT_FALSE(loadCheckpoint(ckpt).ok());
    CheckpointLoadStats stats;
    EXPECT_TRUE(loadCheckpoint(ckpt, &stats).ok());
    EXPECT_TRUE(stats.truncatedTail);

    // Resume recomputes only the lost record; the final journal is
    // byte-identical to the uninterrupted reference.
    {
        CampaignFixture fixture;
        CampaignOptions opts = fixture.options();
        opts.checkpointPath = ckpt;
        opts.resume = true;
        Campaign campaign(*fixture.engine, *fixture.registry, opts);
        const CampaignSummary summary = campaign.run();
        EXPECT_FALSE(summary.interrupted);
        EXPECT_GT(summary.cellsComputed, 0u);
        EXPECT_GT(summary.cellsFromCheckpoint, 0u);
    }
    EXPECT_EQ(slurp(ckpt), reference);

    for (const auto &path : {ref_ckpt, ckpt})
        std::remove(path.c_str());
}

// ------------------------------------------------------ shard wire format

TEST(ShardFormat, RoundTripsAndRejectsGarbage)
{
    ShardSpec spec;
    spec.kind = ShardSpec::Kind::Cycle;
    spec.structure = "ALU";
    spec.delayFraction = 1.0 / 3.0;
    spec.cycle = 1234;
    spec.wireBegin = 3;
    spec.wireEnd = 17;
    spec.quarantined = {4, 9};
    spec.sampling.maxInjectionCycles = 7;
    spec.sampling.maxWires = 30;
    spec.sampling.seed = 99;
    spec.sampling.injectionTimeoutMs = 12.5;

    const std::string line = serializeShardSpec(spec);
    const Result<ShardSpec> parsed = parseShardSpec(line);
    ASSERT_TRUE(parsed.ok()) << parsed.error().what();
    EXPECT_EQ(parsed.value().structure, "ALU");
    EXPECT_EQ(parsed.value().delayFraction, spec.delayFraction);
    EXPECT_EQ(parsed.value().cycle, 1234u);
    EXPECT_EQ(parsed.value().wireBegin, 3u);
    EXPECT_EQ(parsed.value().wireEnd, 17u);
    EXPECT_EQ(parsed.value().quarantined, spec.quarantined);
    EXPECT_EQ(parsed.value().sampling.maxWires, 30u);
    EXPECT_EQ(parsed.value().sampling.seed, 99u);
    EXPECT_EQ(parsed.value().sampling.injectionTimeoutMs, 12.5);

    ShardSpec savf;
    savf.kind = ShardSpec::Kind::Savf;
    savf.structure = "LSU";
    const Result<ShardSpec> savf_parsed =
        parseShardSpec(serializeShardSpec(savf));
    ASSERT_TRUE(savf_parsed.ok());
    EXPECT_EQ(savf_parsed.value().kind, ShardSpec::Kind::Savf);
    EXPECT_EQ(savf_parsed.value().structure, "LSU");

    EXPECT_FALSE(parseShardSpec("").ok());
    EXPECT_FALSE(parseShardSpec("wat 1 2 3").ok());
    EXPECT_FALSE(parseShardSpec("cycle ALU").ok());
    // An absurd quarantine count must be rejected, not allocated.
    EXPECT_FALSE(
        parseShardSpec("cycle ALU 0x1p-1 4 0 10 99999999999 1").ok());

    // No truncation may crash the parser.
    for (size_t n = 0; n < line.size(); ++n)
        (void)parseShardSpec(line.substr(0, n));
}

TEST(QuarantineFormat, RoundTripsAndPersists)
{
    QuarantineRecord record;
    record.configHash = "feedc0de";
    record.benchmark = "md5";
    record.structure = "ALU";
    record.delayFraction = 0.7;
    record.cycle = 42;
    record.wireIndex = 3;
    record.wire = 77;
    record.seed = 5;
    record.reason = "killed by signal 6 (Aborted)";

    const std::string line = serializeQuarantineRecord(record);
    EXPECT_NE(line.find("davf-quarantine v1"), std::string::npos);
    const Result<QuarantineRecord> parsed = parseQuarantineRecord(line);
    ASSERT_TRUE(parsed.ok()) << parsed.error().what();
    EXPECT_EQ(parsed.value(), record);

    EXPECT_FALSE(parseQuarantineRecord("").ok());
    EXPECT_FALSE(parseQuarantineRecord("davf-quarantine v999 x").ok());
    for (size_t n = 0; n < line.size(); ++n)
        (void)parseQuarantineRecord(line.substr(0, n));

    // Directory persistence: save under a fresh dir, load it back.
    const std::string dir = tempPath("qdir");
    std::filesystem::remove_all(dir);
    saveQuarantineRecord(dir, record);
    QuarantineRecord other = record;
    other.delayFraction = 0.9; // must get its own file, not overwrite
    saveQuarantineRecord(dir, other);
    std::vector<QuarantineRecord> loaded = loadQuarantineRecords(dir);
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_TRUE((loaded[0] == record && loaded[1] == other)
                || (loaded[0] == other && loaded[1] == record));

    EXPECT_TRUE(loadQuarantineRecords(tempPath("no-such-qdir")).empty());
    std::filesystem::remove_all(dir);
}

// ------------------------------------------------------ process isolation

/** Sets an environment variable for the enclosing scope. */
struct EnvGuard
{
    const char *name;
    EnvGuard(const char *the_name, const std::string &value)
        : name(the_name)
    {
        ::setenv(name, value.c_str(), 1);
    }
    ~EnvGuard() { ::unsetenv(name); }
};

/** Campaign options running shards in worker processes. */
CampaignOptions
processOptions(const CampaignFixture &fixture, unsigned workers)
{
    CampaignOptions opts = fixture.options();
    opts.isolate = IsolationMode::Process;
    opts.supervisor.workerArgv = {Subprocess::selfExePath(),
                                  "--campaign-worker"};
    opts.supervisor.workers = workers;
    opts.supervisor.backoffBaseMs = 1.0;
    return opts;
}

TEST(Campaign, ProcessIsolationIsBitIdenticalToThreadMode)
{
    const std::string thread_ckpt = tempPath("iso_thread.ckpt");
    const std::string thread_csv = tempPath("iso_thread.csv");

    {
        CampaignFixture fixture;
        CampaignOptions opts = fixture.options();
        opts.checkpointPath = thread_ckpt;
        opts.csvPath = thread_csv;
        Campaign campaign(*fixture.engine, *fixture.registry, opts);
        const CampaignSummary summary = campaign.run();
        EXPECT_FALSE(summary.interrupted);
        EXPECT_EQ(summary.cellsFailed, 0u);
    }
    const std::string ref_journal = slurp(thread_ckpt);
    const std::string ref_csv = slurp(thread_csv);

    // Process isolation at two different worker counts: journal and
    // CSV must match thread mode byte for byte.
    for (unsigned workers : {1u, 3u}) {
        const std::string tag = std::to_string(workers);
        const std::string ckpt = tempPath("iso_proc" + tag + ".ckpt");
        const std::string csv = tempPath("iso_proc" + tag + ".csv");
        CampaignFixture fixture;
        CampaignOptions opts = processOptions(fixture, workers);
        opts.checkpointPath = ckpt;
        opts.csvPath = csv;
        Campaign campaign(*fixture.engine, *fixture.registry, opts);
        const CampaignSummary summary = campaign.run();
        EXPECT_FALSE(summary.interrupted);
        EXPECT_EQ(summary.cellsFailed, 0u);
        EXPECT_TRUE(summary.quarantined.empty());
        EXPECT_EQ(slurp(ckpt), ref_journal) << workers << " workers";
        EXPECT_EQ(slurp(csv), ref_csv) << workers << " workers";
        std::remove(ckpt.c_str());
        std::remove(csv.c_str());
    }

    std::remove(thread_ckpt.c_str());
    std::remove(thread_csv.c_str());
}

TEST(Campaign, TsimModesAreBitIdenticalAcrossIsolation)
{
    // The lane-parallel cone simulator and the cross-delay sweep reuse
    // are engine-level speed knobs: a campaign run with them disabled
    // must produce the same journal and CSV bytes as the default run,
    // in thread mode and under process isolation — so supervised fleets
    // may mix workers with either setting.
    const std::string ref_ckpt = tempPath("tsim_ref.ckpt");
    const std::string ref_csv = tempPath("tsim_ref.csv");
    {
        CampaignFixture fixture;
        CampaignOptions opts = fixture.options();
        opts.checkpointPath = ref_ckpt;
        opts.csvPath = ref_csv;
        Campaign campaign(*fixture.engine, *fixture.registry, opts);
        EXPECT_FALSE(campaign.run().interrupted);
    }
    const std::string ref_journal = slurp(ref_ckpt);
    const std::string ref_csv_bytes = slurp(ref_csv);
    std::remove(ref_ckpt.c_str());
    std::remove(ref_csv.c_str());

    {
        const std::string ckpt = tempPath("tsim_scalar.ckpt");
        const std::string csv = tempPath("tsim_scalar.csv");
        CampaignFixture fixture;
        CampaignOptions opts = fixture.options();
        opts.vectorTsim = false;
        opts.tsimLanes = 1;
        opts.checkpointPath = ckpt;
        opts.csvPath = csv;
        Campaign campaign(*fixture.engine, *fixture.registry, opts);
        EXPECT_FALSE(campaign.run().interrupted);
        EXPECT_EQ(slurp(ckpt), ref_journal) << "thread mode";
        EXPECT_EQ(slurp(csv), ref_csv_bytes) << "thread mode";
        std::remove(ckpt.c_str());
        std::remove(csv.c_str());
    }

    {
        // Scalar-tsim supervisor driving default-configured workers:
        // the two paths mix freely within one campaign.
        const std::string ckpt = tempPath("tsim_proc.ckpt");
        const std::string csv = tempPath("tsim_proc.csv");
        CampaignFixture fixture;
        CampaignOptions opts = processOptions(fixture, 2);
        opts.vectorTsim = false;
        opts.tsimLanes = 1;
        opts.checkpointPath = ckpt;
        opts.csvPath = csv;
        Campaign campaign(*fixture.engine, *fixture.registry, opts);
        const CampaignSummary summary = campaign.run();
        EXPECT_FALSE(summary.interrupted);
        EXPECT_EQ(summary.cellsFailed, 0u);
        EXPECT_EQ(slurp(ckpt), ref_journal) << "process mode";
        EXPECT_EQ(slurp(csv), ref_csv_bytes) << "process mode";
        std::remove(ckpt.c_str());
        std::remove(csv.c_str());
    }
}

TEST(Campaign, WorkerCrashIsRetriedBisectedAndQuarantined)
{
    const std::string qdir = tempPath("crash_qdir");
    const std::string metrics = tempPath("crash_metrics.csv");
    const std::string ckpt = tempPath("crash.ckpt");
    const std::string ckpt2 = tempPath("crash2.ckpt");
    std::filesystem::remove_all(qdir);
    std::remove(metrics.c_str());

    CampaignFixture fixture;
    CampaignOptions opts = processOptions(fixture, 2);
    opts.delays = {0.6};
    opts.runSavf = false;
    opts.supervisor.maxRetries = 1;
    opts.supervisor.quarantineDir = qdir;
    opts.supervisor.metricsCsvPath = metrics;
    opts.checkpointPath = ckpt;

    // Aim the deterministic crash hook at one (cycle, wire) injection;
    // the workers inherit the environment and die there with SIGABRT.
    const std::vector<uint64_t> cycles =
        fixture.engine->injectionCycles(opts.sampling);
    ASSERT_FALSE(cycles.empty());
    const uint64_t target = cycles[cycles.size() / 2];
    QuarantineRecord record;
    {
        EnvGuard fault("DAVF_TEST_FAULT",
                       "crash@Rnd:" + std::to_string(target) + ":2");
        Campaign campaign(*fixture.engine, *fixture.registry, opts);
        const CampaignSummary summary = campaign.run();

        EXPECT_FALSE(summary.interrupted);
        ASSERT_EQ(summary.cells.size(), 1u);
        EXPECT_FALSE(summary.cells[0].failed)
            << summary.cells[0].failReason;

        // The crash was bisected down to the single injection.
        ASSERT_EQ(summary.quarantined.size(), 1u);
        record = summary.quarantined[0];
        EXPECT_EQ(record.structure, "Rnd");
        EXPECT_EQ(record.cycle, target);
        EXPECT_EQ(record.wireIndex, 2u);
        EXPECT_NE(record.reason.find("signal"), std::string::npos)
            << record.reason;

        // Quarantined injections are skip-tallied, not silently lost.
        const DelayAvfResult &davf = summary.cells[0].davf;
        EXPECT_EQ(davf.skipReasons.count("quarantined"), 1u);
        EXPECT_GE(davf.skippedErrors, 1u);
        EXPECT_LE(davf.skippedErrors, davf.injections);
    }

    // The record was persisted and is loadable.
    const std::vector<QuarantineRecord> loaded =
        loadQuarantineRecords(qdir);
    ASSERT_EQ(loaded.size(), 1u);
    EXPECT_EQ(loaded[0], record);

    // Workers died with SIGABRT mid-shard, but the journal (written
    // only by the supervisor process) stays strictly parseable.
    ASSERT_TRUE(loadCheckpoint(ckpt).ok());

    // Per-attempt metrics recorded crashes and successes.
    const std::string csv = slurp(metrics);
    EXPECT_NE(csv.find("outcome,wall_ms,max_rss_kb"), std::string::npos);
    EXPECT_NE(csv.find(",crash,"), std::string::npos);
    EXPECT_NE(csv.find(",ok,"), std::string::npos);

    // Convergence: with the fault disarmed but the quarantine records
    // kept, a fresh campaign reproduces the exact same journal without
    // a single crash (the known-bad injection stays excluded).
    {
        CampaignFixture fixture2;
        CampaignOptions opts2 = processOptions(fixture2, 2);
        opts2.delays = {0.6};
        opts2.runSavf = false;
        opts2.supervisor.quarantineDir = qdir;
        opts2.checkpointPath = ckpt2;
        Campaign campaign(*fixture2.engine, *fixture2.registry, opts2);
        const CampaignSummary summary = campaign.run();
        EXPECT_FALSE(summary.interrupted);
        EXPECT_TRUE(summary.quarantined.empty())
            << "no new quarantines expected";
    }
    EXPECT_EQ(slurp(ckpt2), slurp(ckpt));

    std::filesystem::remove_all(qdir);
    for (const auto &path : {metrics, ckpt, ckpt2})
        std::remove(path.c_str());
}

TEST(Campaign, HungWorkerIsKilledByTheShardDeadline)
{
    const std::string qdir = tempPath("hang_qdir");
    std::filesystem::remove_all(qdir);

    CampaignFixture fixture;
    CampaignOptions opts = processOptions(fixture, 1);
    opts.delays = {0.6};
    opts.runSavf = false;
    // A small shard keeps the bisection probes cheap: each probe that
    // contains the hanging injection burns one deadline.
    opts.sampling.maxInjectionCycles = 2;
    opts.sampling.maxWires = 8;
    // One quarantined injection out of 8 wires would trip the default
    // 5% failure threshold; this test is about the deadline, not that.
    opts.maxFailureRate = 0.5;
    opts.supervisor.maxRetries = 0;
    opts.supervisor.shardTimeoutMs = 1000.0;
    opts.supervisor.quarantineDir = qdir;

    const std::vector<uint64_t> cycles =
        fixture.engine->injectionCycles(opts.sampling);
    ASSERT_FALSE(cycles.empty());
    const uint64_t target = cycles.front();

    // The hook hangs while heartbeating, so only the shard deadline
    // (not the heartbeat watchdog) can catch it.
    EnvGuard fault("DAVF_TEST_FAULT",
                   "hang@Rnd:" + std::to_string(target) + ":1");
    Campaign campaign(*fixture.engine, *fixture.registry, opts);
    const CampaignSummary summary = campaign.run();

    EXPECT_FALSE(summary.interrupted);
    ASSERT_EQ(summary.cells.size(), 1u);
    EXPECT_FALSE(summary.cells[0].failed) << summary.cells[0].failReason;
    ASSERT_EQ(summary.quarantined.size(), 1u);
    EXPECT_EQ(summary.quarantined[0].cycle, target);
    EXPECT_EQ(summary.quarantined[0].wireIndex, 1u);
    EXPECT_NE(summary.quarantined[0].reason.find("budget"),
              std::string::npos)
        << summary.quarantined[0].reason;

    std::filesystem::remove_all(qdir);
}

/** The hidden worker mode: rebuild the fixture engine and serve
 *  shards. Must match CampaignFixture exactly, or the bit-identity
 *  tests above would (correctly) fail. */
int
campaignWorkerMain()
{
    CampaignFixture fixture;
    return runCampaignWorker(*fixture.engine, *fixture.registry);
}

} // namespace
} // namespace davf

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string_view(argv[i]) == "--campaign-worker")
            return davf::campaignWorkerMain();
    }
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
