#!/bin/sh
# Tier-1 CI gate: build the tree in the default (RelWithDebInfo)
# configuration and under address+undefined sanitizers, and run the
# full ctest suite in both. Any failure fails the script.
#
# Usage: tools/ci_check.sh [jobs]
set -eu

jobs="${1:-$(nproc 2>/dev/null || echo 4)}"
root="$(cd "$(dirname "$0")/.." && pwd)"

run_config() {
    build_dir="$1"
    shift
    echo "=== configure $build_dir ($*)" >&2
    cmake -B "$build_dir" -S "$root" "$@"
    echo "=== build $build_dir" >&2
    cmake --build "$build_dir" -j "$jobs"
    echo "=== test $build_dir" >&2
    ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"
}

# Process-isolation smoke: run a tiny campaign with worker processes
# and the deterministic crash hook armed. The supervisor must retry,
# bisect the crash down to one injection, quarantine it, and still
# complete with exit 0 — under sanitizers, so the worker protocol and
# the bisection path get ASan/UBSan coverage on every CI run.
# RLIMIT_AS (--worker-mem-mb) is incompatible with ASan's shadow
# mappings and is deliberately not passed here.
isolation_smoke() {
    build_dir="$1"
    smoke_dir="$build_dir/isolation-smoke"
    rm -rf "$smoke_dir"
    mkdir -p "$smoke_dir"
    echo "=== isolation smoke $build_dir" >&2
    DAVF_TEST_FAULT='crash@ALU:*:3' \
        "$build_dir/tools/davf_run" \
        --benchmark popcount --structure ALU --delays 0.5:0.9:0.4 \
        --cycles 2 --wires 12 --isolate process --workers 2 \
        --max-retries 1 --backoff-ms 1 --max-failure-rate 0.5 \
        --quarantine-dir "$smoke_dir/quarantine" \
        --shard-metrics-csv "$smoke_dir/shards.csv" \
        --checkpoint "$smoke_dir/journal.ckpt" \
        --csv "$smoke_dir/davf.csv"
    quarantined=$(ls "$smoke_dir/quarantine"/*.qr 2>/dev/null | wc -l)
    if [ "$quarantined" -eq 0 ]; then
        echo "isolation smoke: no quarantine records written" >&2
        exit 1
    fi
    for f in shards.csv journal.ckpt davf.csv; do
        if [ ! -s "$smoke_dir/$f" ]; then
            echo "isolation smoke: missing $f" >&2
            exit 1
        fi
    done
    echo "=== isolation smoke ok ($quarantined quarantined)" >&2
}

run_config "$root/build-ci-release" -DCMAKE_BUILD_TYPE=Release
isolation_smoke "$root/build-ci-release"
run_config "$root/build-ci-asan" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DDAVF_SANITIZE=address,undefined
isolation_smoke "$root/build-ci-asan"

echo "=== ci_check: all configurations passed" >&2
