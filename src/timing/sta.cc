#include "sta.hh"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/logging.hh"

namespace davf {

namespace {

constexpr double kNoPath = -std::numeric_limits<double>::infinity();

/** True if this sink pin is sampled at the clock edge. */
bool
isEndpointSink(const Netlist &nl, const Sink &sink)
{
    const CellType type = nl.cell(sink.cell).type;
    return type == CellType::Dff || type == CellType::Dffe
        || type == CellType::Behav || type == CellType::Output;
}

} // namespace

DelayModel::DelayModel(const Netlist &netlist, const CellLibrary &library)
    : nl(&netlist), clkToQDelay(library.clkToQ)
{
    davf_assert(netlist.finalized(), "DelayModel requires finalize()");

    cellDelays.resize(netlist.numCells(), 0.0);
    for (CellId id = 0; id < netlist.numCells(); ++id) {
        const CellType type = netlist.cell(id).type;
        if (cellIsCombinational(type))
            cellDelays[id] = library.timing(type).intrinsic;
    }

    wireDelays.resize(netlist.numWires(), 0.0);
    for (WireId id = 0; id < netlist.numWires(); ++id) {
        const NetId net = netlist.wire(id).net;
        const CellType driver_type =
            netlist.cell(netlist.net(net).driver).type;
        const double slope = library.timing(driver_type).loadSlope;
        wireDelays[id] = library.wireBase
            + slope * static_cast<double>(netlist.fanout(net));
    }
}

Sta::Sta(const DelayModel &delay_model)
    : delays(&delay_model), nl(&delay_model.netlist())
{
    const Netlist &netlist = *nl;

    // Forward arrival times. Cycle-start sources (sequential outputs and
    // primary inputs) transition clkToQ after the edge; constants never
    // transition but are assigned time 0 so static paths through them are
    // well defined (the dynamic step filters them out).
    arrivals.assign(netlist.numNets(), 0.0);
    for (NetId id = 0; id < netlist.numNets(); ++id) {
        const CellType type = netlist.cell(netlist.net(id).driver).type;
        if (cellIsSequential(type) || type == CellType::Input)
            arrivals[id] = delays->clkToQ();
    }
    for (CellId id : netlist.topoOrder()) {
        const Cell &cell = netlist.cell(id);
        double latest = 0.0;
        for (uint16_t pin = 0; pin < cell.inputs.size(); ++pin) {
            const double pin_time = arrivals[cell.inputs[pin]]
                + delays->wireDelay(netlist.inputWire(id, pin));
            latest = std::max(latest, pin_time);
        }
        arrivals[cell.outputs[0]] = latest + delays->cellDelay(id);
    }

    // Design-wide longest path: worst arrival at any sampled endpoint pin.
    maxPathDelay = 0.0;
    for (NetId id = 0; id < netlist.numNets(); ++id) {
        const Net &net = netlist.net(id);
        for (uint32_t s = 0; s < net.sinks.size(); ++s) {
            if (!isEndpointSink(netlist, net.sinks[s]))
                continue;
            const double pin_time = arrivals[id]
                + delays->wireDelay(net.firstWire + s);
            maxPathDelay = std::max(maxPathDelay, pin_time);
        }
    }

    // Backward longest-to-endpoint delays, reverse topological order.
    downstreams.assign(netlist.numNets(), kNoPath);
    auto relax_net = [&](NetId id) {
        const Net &net = netlist.net(id);
        double best = kNoPath;
        for (uint32_t s = 0; s < net.sinks.size(); ++s) {
            const Sink &sink = net.sinks[s];
            const double wire = delays->wireDelay(net.firstWire + s);
            if (isEndpointSink(netlist, sink)) {
                best = std::max(best, wire);
            } else if (cellIsCombinational(netlist.cell(sink.cell).type)) {
                const NetId out = netlist.cell(sink.cell).outputs[0];
                if (downstreams[out] != kNoPath) {
                    best = std::max(best,
                                    wire + delays->cellDelay(sink.cell)
                                        + downstreams[out]);
                }
            }
        }
        downstreams[id] = best;
    };
    const auto &topo = netlist.topoOrder();
    for (auto it = topo.rbegin(); it != topo.rend(); ++it)
        relax_net(netlist.cell(*it).outputs[0]);
    for (NetId id = 0; id < netlist.numNets(); ++id) {
        const CellType type = netlist.cell(netlist.net(id).driver).type;
        if (!cellIsCombinational(type))
            relax_net(id);
    }

    coneLatest.assign(netlist.numCells(), kNoPath);
    coneMark.assign(netlist.numCells(), 0);
}

double
Sta::longestPathThrough(WireId id) const
{
    const Netlist &netlist = *nl;
    const Wire &wire = netlist.wire(id);
    const Sink &sink = netlist.wireSink(id);
    const double prefix = arrivals[wire.net] + delays->wireDelay(id);
    if (isEndpointSink(netlist, sink))
        return prefix;
    if (cellIsCombinational(netlist.cell(sink.cell).type)) {
        const NetId out = netlist.cell(sink.cell).outputs[0];
        if (downstreams[out] != kNoPath) {
            return prefix + delays->cellDelay(sink.cell)
                + downstreams[out];
        }
    }
    return 0.0;
}

void
Sta::staticallyReachable(WireId id, double extra_delay, double period,
                         std::vector<StateElemId> &reachable) const
{
    reachable.clear();
    const Netlist &netlist = *nl;
    constexpr double kEps = 1e-9;

    ++coneStamp;
    const uint32_t stamp = coneStamp;

    // Latest arrival, through the faulted wire, at the sink pin of the
    // injected wire.
    const Wire &wire = netlist.wire(id);
    const double t0 = arrivals[wire.net] + delays->wireDelay(id)
        + extra_delay;

    // Track per-state-element worst arrival; small sets, so a flat
    // vector of (elem, time) pairs with linear dedup is fine.
    auto note_endpoint = [&](StateElemId elem, double when) {
        if (when > period + kEps) {
            if (std::find(reachable.begin(), reachable.end(), elem)
                == reachable.end()) {
                reachable.push_back(elem);
            }
        }
    };

    auto endpoint_elem = [&](const Sink &sink) -> StateElemId {
        const CellType type = netlist.cell(sink.cell).type;
        if (type == CellType::Dff || type == CellType::Dffe)
            return netlist.flopStateElem(sink.cell);
        return netlist.pinStateElem(sink.cell, sink.pin);
    };

    // Min-heap on topological level so every cone cell is finalized after
    // all of its in-cone predecessors.
    using Entry = std::pair<unsigned, CellId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;

    auto seed_sink = [&](const Sink &sink, double pin_time) {
        if (isEndpointSink(netlist, sink)) {
            note_endpoint(endpoint_elem(sink), pin_time);
            return;
        }
        const Cell &cell = netlist.cell(sink.cell);
        if (!cellIsCombinational(cell.type))
            return;
        const double out_time = pin_time + delays->cellDelay(sink.cell);
        if (coneMark[sink.cell] != stamp) {
            coneMark[sink.cell] = stamp;
            coneLatest[sink.cell] = out_time;
            queue.emplace(netlist.level(sink.cell), sink.cell);
        } else {
            coneLatest[sink.cell] =
                std::max(coneLatest[sink.cell], out_time);
        }
    };

    seed_sink(netlist.wireSink(id), t0);

    while (!queue.empty()) {
        const auto [level, cell_id] = queue.top();
        queue.pop();
        // A cell may be pushed once per in-cone fanin; only its first pop
        // (by then coneLatest holds the max, as all predecessors have
        // strictly lower levels) expands it. Detect repeats by checking
        // whether we already expanded: flip the mark to stamp | 0x8000...
        if (coneMark[cell_id] != stamp)
            continue; // Already expanded (mark advanced below).
        coneMark[cell_id] = stamp ^ 0x80000000u;

        const double out_time = coneLatest[cell_id];
        const NetId out = netlist.cell(cell_id).outputs[0];
        const Net &net = netlist.net(out);
        for (uint32_t s = 0; s < net.sinks.size(); ++s) {
            const double pin_time = out_time
                + delays->wireDelay(net.firstWire + s);
            const Sink &sink = net.sinks[s];
            if (isEndpointSink(netlist, sink)) {
                note_endpoint(endpoint_elem(sink), pin_time);
                continue;
            }
            const Cell &cell = netlist.cell(sink.cell);
            if (!cellIsCombinational(cell.type))
                continue;
            const double next_out =
                pin_time + delays->cellDelay(sink.cell);
            if (coneMark[sink.cell] == stamp) {
                coneLatest[sink.cell] =
                    std::max(coneLatest[sink.cell], next_out);
            } else if (coneMark[sink.cell] != (stamp ^ 0x80000000u)) {
                coneMark[sink.cell] = stamp;
                coneLatest[sink.cell] = next_out;
                queue.emplace(netlist.level(sink.cell), sink.cell);
            }
        }
    }

    std::sort(reachable.begin(), reachable.end());
}

} // namespace davf
