/**
 * @file
 * Unit tests for src/obs: the metrics registry (sharded counters,
 * gauges, power-of-two histograms, deterministic snapshots) and the
 * span tracer (Chrome trace JSON export), plus the util JSON validator
 * both emitters are checked against.
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics.hh"
#include "src/obs/trace.hh"
#include "src/util/json.hh"

namespace davf {
namespace {

/** Enable metric collection for one test, restoring the default off. */
class MetricsOn
{
  public:
    MetricsOn()
    {
        obs::MetricsRegistry::instance().reset();
        obs::MetricsRegistry::setEnabled(true);
    }

    ~MetricsOn()
    {
        obs::MetricsRegistry::setEnabled(false);
        obs::MetricsRegistry::instance().reset();
    }
};

TEST(Metrics, DisabledCollectionIsANoOp)
{
    obs::MetricsRegistry::instance().reset();
    ASSERT_FALSE(obs::MetricsRegistry::enabled());
    const obs::Counter counter("test.disabled_counter");
    const obs::Gauge gauge("test.disabled_gauge");
    const obs::ValueHistogram hist("test.disabled_hist");
    counter.add(7);
    gauge.set(-3);
    hist.observe(100);

    const obs::MetricsSnapshot snap =
        obs::MetricsRegistry::instance().snapshot();
    EXPECT_EQ(snap.counters.at("test.disabled_counter"), 0u);
    EXPECT_EQ(snap.gauges.at("test.disabled_gauge"), 0);
    EXPECT_EQ(snap.histograms.at("test.disabled_hist").count, 0u);
}

TEST(Metrics, CounterAccumulatesAcrossThreads)
{
    const MetricsOn on;
    const obs::Counter counter("test.threaded_counter");
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < 1000; ++i)
                counter.add();
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    const obs::MetricsSnapshot snap =
        obs::MetricsRegistry::instance().snapshot();
    EXPECT_EQ(snap.counters.at("test.threaded_counter"), 8000u);
}

TEST(Metrics, SameNameSharesState)
{
    const MetricsOn on;
    const obs::Counter a("test.shared");
    const obs::Counter b("test.shared");
    a.add(2);
    b.add(3);
    const obs::MetricsSnapshot snap =
        obs::MetricsRegistry::instance().snapshot();
    EXPECT_EQ(snap.counters.at("test.shared"), 5u);
}

TEST(Metrics, GaugeLastWriterWins)
{
    const MetricsOn on;
    const obs::Gauge gauge("test.gauge");
    gauge.set(41);
    gauge.add(1);
    gauge.set(-17);
    const obs::MetricsSnapshot snap =
        obs::MetricsRegistry::instance().snapshot();
    EXPECT_EQ(snap.gauges.at("test.gauge"), -17);
}

TEST(Metrics, HistogramBucketsByBitWidth)
{
    const MetricsOn on;
    const obs::ValueHistogram hist("test.hist");
    hist.observe(0);  // bucket 0
    hist.observe(1);  // bucket 1: [1, 1]
    hist.observe(2);  // bucket 2: [2, 3]
    hist.observe(3);  // bucket 2
    hist.observe(4);  // bucket 3: [4, 7]
    hist.observe(~uint64_t(0)); // bucket 64

    const obs::HistogramSnapshot h = obs::MetricsRegistry::instance()
                                         .snapshot()
                                         .histograms.at("test.hist");
    EXPECT_EQ(h.count, 6u);
    EXPECT_EQ(h.buckets[0], 1u);
    EXPECT_EQ(h.buckets[1], 1u);
    EXPECT_EQ(h.buckets[2], 2u);
    EXPECT_EQ(h.buckets[3], 1u);
    EXPECT_EQ(h.buckets[64], 1u);
    EXPECT_EQ(h.sum, 10u + ~uint64_t(0));
}

TEST(Metrics, SnapshotContentDeterministicAcrossThreadCounts)
{
    // The same logical work recorded from 1 thread and from 4 threads
    // must produce identical snapshot JSON (the registry sorts names
    // and merges shards; nothing here reads a clock).
    auto run = [](unsigned threads) {
        obs::MetricsRegistry::instance().reset();
        obs::MetricsRegistry::setEnabled(true);
        const obs::Counter work("test.det_work");
        const obs::ValueHistogram sizes("test.det_sizes");
        std::vector<std::thread> pool;
        for (unsigned t = 0; t < threads; ++t) {
            pool.emplace_back([&, t] {
                for (unsigned i = t; i < 1000; i += threads) {
                    work.add(i);
                    sizes.observe(i % 17);
                }
            });
        }
        for (std::thread &thread : pool)
            thread.join();
        std::string json =
            obs::MetricsRegistry::instance().snapshot().toJson();
        obs::MetricsRegistry::setEnabled(false);
        obs::MetricsRegistry::instance().reset();
        return json;
    };
    EXPECT_EQ(run(1), run(4));
}

TEST(Metrics, SnapshotJsonIsValid)
{
    const MetricsOn on;
    const obs::Counter counter("test.json_counter");
    const obs::Gauge gauge("test.json_gauge");
    const obs::ValueHistogram hist("test.json_hist");
    counter.add(123);
    gauge.set(-5);
    hist.observe(9);
    const std::string json =
        obs::MetricsRegistry::instance().snapshot().toJson();
    const JsonCheck check = jsonValidate(json);
    EXPECT_TRUE(check.valid) << check.message << " at offset "
                             << check.offset << " in: " << json;
    EXPECT_NE(json.find("\"test.json_counter\":123"), std::string::npos);
}

TEST(Trace, SpanRecordsEventsAndExportsValidJson)
{
    obs::Trace::clear();
    obs::Trace::setEnabled(true);
    {
        const obs::Span outer("unit.outer");
        const obs::Span inner("unit.inner");
    }
    obs::Trace::setEnabled(false);

    const std::string json = obs::Trace::toChromeJson();
    const JsonCheck check = jsonValidate(json);
    EXPECT_TRUE(check.valid) << check.message << " at offset "
                             << check.offset;
    EXPECT_NE(json.find("\"name\":\"unit.outer\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"unit.inner\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    obs::Trace::clear();
}

TEST(Trace, DisabledSpansRecordNothing)
{
    obs::Trace::clear();
    ASSERT_FALSE(obs::Trace::enabled());
    {
        const obs::Span span("unit.invisible");
    }
    const std::string json = obs::Trace::toChromeJson();
    EXPECT_EQ(json.find("unit.invisible"), std::string::npos);
}

TEST(Trace, SpanFeedsPhaseCounterWhenMetricsOn)
{
    const MetricsOn on;
    const obs::Counter phase_ns("test.phase_ns");
    {
        const obs::Span span("unit.timed", &phase_ns);
    }
    const obs::MetricsSnapshot snap =
        obs::MetricsRegistry::instance().snapshot();
    // Wall time is nondeterministic but the counter must have been fed
    // (a steady clock cannot return the same value twice in practice —
    // accept zero only if the platform's clock is that coarse).
    EXPECT_TRUE(snap.counters.contains("test.phase_ns"));
}

TEST(Json, AcceptsWellFormedDocuments)
{
    EXPECT_TRUE(jsonValidate("{}"));
    EXPECT_TRUE(jsonValidate("[]"));
    EXPECT_TRUE(jsonValidate("null"));
    EXPECT_TRUE(jsonValidate("-12.5e-3"));
    EXPECT_TRUE(jsonValidate("\"str \\u00e9 \\n\""));
    EXPECT_TRUE(jsonValidate(
        "{\"a\":[1,2,{\"b\":null}],\"c\":true,\"d\":\"x\"}"));
    EXPECT_TRUE(jsonValidate("  [1, 2, 3]\n"));
}

TEST(Json, RejectsMalformedDocuments)
{
    EXPECT_FALSE(jsonValidate(""));
    EXPECT_FALSE(jsonValidate("{"));
    EXPECT_FALSE(jsonValidate("[1,]"));
    EXPECT_FALSE(jsonValidate("{\"a\":}"));
    EXPECT_FALSE(jsonValidate("{'a':1}"));
    EXPECT_FALSE(jsonValidate("[1] trailing"));
    EXPECT_FALSE(jsonValidate("01"));
    EXPECT_FALSE(jsonValidate("\"unterminated"));
}

TEST(Json, RejectsNonFiniteNumberTokens)
{
    // The bug class the validator exists for: printf-style emitters
    // leaking non-finite doubles into reports.
    EXPECT_FALSE(jsonValidate("nan"));
    EXPECT_FALSE(jsonValidate("NaN"));
    EXPECT_FALSE(jsonValidate("inf"));
    EXPECT_FALSE(jsonValidate("-inf"));
    EXPECT_FALSE(jsonValidate("Infinity"));
    EXPECT_FALSE(jsonValidate("{\"x\":nan}"));
    EXPECT_FALSE(jsonValidate("{\"x\":-inf}"));
}

TEST(Json, ReportsErrorOffset)
{
    const JsonCheck check = jsonValidate("{\"a\":nan}");
    EXPECT_FALSE(check.valid);
    EXPECT_EQ(check.offset, 5u);
    EXPECT_FALSE(check.message.empty());
}

TEST(Json, PrettyIndentsNestedContainers)
{
    EXPECT_EQ(jsonPretty("{\"a\":1,\"b\":[1,2],\"c\":{\"d\":null}}"),
              "{\n"
              "  \"a\": 1,\n"
              "  \"b\": [\n"
              "    1,\n"
              "    2\n"
              "  ],\n"
              "  \"c\": {\n"
              "    \"d\": null\n"
              "  }\n"
              "}");
}

TEST(Json, PrettyKeepsEmptyContainersAndScalarsOnOneLine)
{
    EXPECT_EQ(jsonPretty("{}"), "{}");
    EXPECT_EQ(jsonPretty("[]"), "[]");
    EXPECT_EQ(jsonPretty("{\"a\":{},\"b\":[  ]}"),
              "{\n  \"a\": {},\n  \"b\": []\n}");
    EXPECT_EQ(jsonPretty("-12.5e-3"), "-12.5e-3");
    EXPECT_EQ(jsonPretty("null"), "null");
}

TEST(Json, PrettyLeavesStringContentsAlone)
{
    // Braces, commas, colons, and escapes inside strings are data, not
    // structure; number spellings and key order must survive.
    EXPECT_EQ(jsonPretty("{\"k{,:}\":\"v[1,2]\\\"\"}"),
              "{\n  \"k{,:}\": \"v[1,2]\\\"\"\n}");
    EXPECT_EQ(jsonPretty("[1.50e+1]"), "[\n  1.50e+1\n]");
}

TEST(Json, PrettyReturnsMalformedInputUnchanged)
{
    EXPECT_EQ(jsonPretty("{\"a\":"), "{\"a\":");
    EXPECT_EQ(jsonPretty("not json"), "not json");
    EXPECT_EQ(jsonPretty(""), "");
}

} // namespace
} // namespace davf
