/**
 * @file
 * The davf_serve query scheduler.
 *
 * Decomposes one client query (structure × delay list [× sAVF]) into
 * the same shard units the process-isolated campaign uses — one
 * DelayAVF injection cycle or one whole sAVF evaluation (core/shard) —
 * and resolves each shard against the persistent result store before
 * ever touching the engine:
 *
 *  - **store hit**: the shard's outcome payload is parsed back from the
 *    journal token grammar; no simulation runs.
 *  - **store miss**: the shard is computed — in-process on the engine's
 *    thread pool, or dispatched to supervised worker processes when the
 *    scheduler was given a worker command line — and the fresh outcome
 *    is written back to the store as it completes.
 *
 * Aggregation always goes through VulnerabilityEngine::delayAvf() with
 * the outcomes supplied as DelayAvfProgress::completed — the proven
 * checkpoint-resume path — so a reply assembled from cached shards is
 * bit-identical to a cold evaluation at any thread or worker count.
 *
 * Concurrency: the engine's delayAvf/delayAvfCycle entry points share
 * mutable snapshot state and must not run concurrently, so one mutex
 * serializes all *compute* (each compute still fans out internally
 * across the engine thread pool). Store hits are served without that
 * lock, so warm queries from many clients proceed in parallel. A miss
 * re-checks the store after acquiring the compute lock: identical
 * shards requested by concurrent clients are therefore computed once —
 * the second client finds them already stored (tallied as
 * inFlightHits) and only aggregates.
 */

#ifndef DAVF_SERVICE_SCHEDULER_HH
#define DAVF_SERVICE_SCHEDULER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/report.hh"
#include "core/shard.hh"
#include "core/vulnerability.hh"
#include "netlist/structure.hh"
#include "service/protocol.hh"
#include "service/result_store.hh"
#include "util/stats.hh"

namespace davf {
class Supervisor;
}

namespace davf::service {

/**
 * The content-addressed store key of one shard under one workspace
 * build fingerprint. Shared by the query scheduler and the net
 * coordinator's cache tier (src/net/coordinator.hh), so a shard
 * computed by either is a hit for the other.
 */
std::string shardStoreKey(const std::string &fingerprint,
                          const ShardSpec &spec);

/** Monotonic scheduler counters (store counters live in StoreStats). */
struct SchedulerStats
{
    uint64_t queries = 0;       ///< Queries answered successfully.
    uint64_t shardHits = 0;     ///< Shards served from the store.
    uint64_t inFlightHits = 0;  ///< Misses resolved by another client's
                                ///< concurrent compute of the same shard.
    uint64_t shardsComputed = 0; ///< Shards simulated here.
    uint64_t cancelled = 0;      ///< Queries stopped cooperatively.
};

/** The query scheduler (see file comment). */
class QueryScheduler
{
  public:
    struct Options
    {
        /** Benchmark label stamped into report rows. */
        std::string benchmark = "workload";

        /** Suffix appended to structure labels (e.g. " (ECC)"). */
        std::string structureLabel;

        /** Engine compute threads (0 = hardware concurrency). */
        unsigned threads = 0;

        /**
         * Worker command line for process-isolated compute; empty runs
         * misses in-process on the engine thread pool.
         */
        std::vector<std::string> workerArgv;

        /** Worker pool size / retry budget / memory cap (process mode). */
        unsigned workers = 1;
        unsigned maxRetries = 2;
        uint64_t workerMemMb = 0;
    };

    /**
     * @p fingerprint is the workspace build fingerprint the store keys
     * are derived from (Workspace::fingerprint(), or any stable token
     * in tests). The engine, registry, and store must outlive this.
     */
    QueryScheduler(VulnerabilityEngine &engine,
                   const StructureRegistry &registry,
                   std::string fingerprint, ResultStore &store,
                   Options options);
    ~QueryScheduler();

    QueryScheduler(const QueryScheduler &) = delete;
    QueryScheduler &operator=(const QueryScheduler &) = delete;

    /** One answered query. */
    struct QueryReply
    {
        /** reportJson() over the query's rows (see core/report). */
        std::string reportJson;

        uint64_t storeHits = 0;   ///< Shards this query took from the store.
        uint64_t storeMisses = 0; ///< Shards this query had to compute.
    };

    /**
     * Answer @p query. @p cancel, when given, stops the evaluation
     * cooperatively between injections (Err{Timeout, "cancelled"}).
     * Unknown structures are Err{NotFound}; out-of-domain delays are
     * Err{OutOfRange}; engine failures surface as their own kinds.
     */
    Result<QueryReply> run(const QuerySpec &query,
                           const std::atomic<bool> *cancel = nullptr);

    /** The store key of @p spec under this scheduler's fingerprint. */
    std::string shardKey(const ShardSpec &spec) const;

    SchedulerStats stats() const;

    /**
     * Scheduler + store counters and the per-stage latency histograms
     * (lookup / compute / aggregate, milliseconds) as one JSON line —
     * the body of the protocol's "ok stats" reply.
     */
    std::string statsJson() const;

  private:
    Result<DelayAvfResult> runDavfCell(const Structure &structure,
                                       const QuerySpec &query, double d,
                                       const std::atomic<bool> *cancel,
                                       QueryReply &reply);
    Result<SavfResult> runSavfCell(const Structure &structure,
                                   const QuerySpec &query,
                                   const std::atomic<bool> *cancel,
                                   QueryReply &reply);

    /** Persist one freshly computed outcome under its shard key. */
    void storeOutcome(ShardSpec spec,
                      const InjectionCycleOutcome &outcome);

    VulnerabilityEngine *engine;
    const StructureRegistry *registry;
    std::string fingerprint;
    ResultStore *store;
    Options options;

    /** Serializes every engine compute (see file comment). */
    std::mutex engineMutex;

    std::unique_ptr<Supervisor> supervisor; ///< Process-isolation mode.

    mutable std::mutex statsMutex;
    SchedulerStats counters;
    Histogram lookupMs;    ///< Store-resolution time per cell.
    Histogram computeMs;   ///< Simulation time per cell with misses.
    Histogram aggregateMs; ///< Aggregation-only time per cell.
};

} // namespace davf::service

#endif // DAVF_SERVICE_SCHEDULER_HH
