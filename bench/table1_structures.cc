/**
 * @file
 * Table I reproduction: statistics about the examined structures — the
 * number of SDF injection sites (wires E) per microarchitectural
 * structure, for the plain build and the ECC-regfile build.
 *
 * Paper reference values (Ibex, Yosys + NanGate 45): ALU 3668,
 * Decoder 1007, Regfile 17816, Regfile (ECC) 19611, LSU 2027,
 * Prefetch 3249. IbexMini is a leaner synthesis, so absolute counts are
 * smaller; the expected shape is Regfile >> ALU > Prefetch/LSU/Decoder
 * and Regfile (ECC) > Regfile.
 */

#include <cstdio>

#include "bench/common.hh"

using namespace davf;
using namespace davf::bench;

int
main()
{
    std::printf("Table I: statistics about the examined structures\n");
    std::printf("(# injected wires E per structure)\n\n");

    IbexMini plain({}, {});
    IbexMiniConfig ecc_config;
    ecc_config.eccRegfile = true;
    IbexMini ecc(ecc_config, {});

    std::printf("%-22s%12s\n", "Structure", "# wires (E)");
    printRule(1);
    for (const char *name : {"ALU", "Decoder", "Regfile"}) {
        std::printf("%-22s%12zu\n", name,
                    plain.structures().find(name)->wires.size());
        if (std::string(name) == "Regfile") {
            std::printf("%-22s%12zu\n", "Regfile (ECC)",
                        ecc.structures().find("Regfile")->wires.size());
        }
    }
    for (const char *name : {"LSU", "Prefetch"}) {
        std::printf("%-22s%12zu\n", name,
                    plain.structures().find(name)->wires.size());
    }

    std::printf("\nWhole-design facts (plain build):\n");
    std::printf("  cells: %zu  nets: %zu  wires: %zu  state elems: %zu\n",
                plain.netlist().numCells(), plain.netlist().numNets(),
                plain.netlist().numWires(),
                plain.netlist().numStateElems());
    return 0;
}
