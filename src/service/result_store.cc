#include "result_store.hh"

#include <filesystem>
#include <fstream>
#include <sstream>

#include <cstdio>

#include "obs/metrics.hh"
#include "util/atomic_file.hh"
#include "util/crashpoint.hh"
#include "util/logging.hh"

namespace davf::service {

namespace {

/** Store metric handles, mirroring StoreStats (docs/OBSERVABILITY.md). */
struct StoreMetrics
{
    obs::Counter memoryHits{"store.memory_hits"};
    obs::Counter diskHits{"store.disk_hits"};
    obs::Counter misses{"store.misses"};
    obs::Counter evictions{"store.evictions"};
    obs::Counter corruptRecords{"store.corrupt_records"};
    obs::Counter writes{"store.writes"};
    obs::Counter writeFailures{"store.write_failures"};
    obs::Counter repairUnlinks{"store.repair_unlinks"};
};

StoreMetrics &
storeMetrics()
{
    static StoreMetrics *const metrics = new StoreMetrics();
    return *metrics;
}

} // namespace

namespace {

std::string
fnv1aHex(const std::string &text)
{
    uint64_t hash = 0xcbf29ce484222325ull;
    for (unsigned char c : text) {
        hash ^= c;
        hash *= 0x100000001b3ull;
    }
    std::ostringstream os;
    os << std::hex << hash;
    return os.str();
}

} // namespace

ResultStore::ResultStore(Options the_options)
    : options(std::move(the_options))
{
    if (options.dir.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(options.dir, ec);
    if (ec) {
        davf_throw(ErrorKind::Io, "cannot create store dir '",
                   options.dir, "': ", ec.message());
    }
}

std::string
ResultStore::serializeRecord(const std::string &key,
                             const std::string &payload)
{
    std::ostringstream os;
    os << "davf-store v" << kVersion << "\nkey " << key << "\npayload "
       << payload << "\nsum " << fnv1aHex(key + '\n' + payload)
       << "\nend\n";
    return os.str();
}

Result<std::pair<std::string, std::string>>
ResultStore::parseRecord(const std::string &text)
{
    using R = Result<std::pair<std::string, std::string>>;
    std::istringstream is(text);
    std::string line;

    if (!std::getline(is, line)
        || line != "davf-store v" + std::to_string(kVersion)) {
        return R::Err(ErrorKind::BadInput,
                      "store record: bad header: " + line.substr(0, 60));
    }
    if (!std::getline(is, line) || line.rfind("key ", 0) != 0
        || line.size() == 4) {
        return R::Err(ErrorKind::BadInput,
                      "store record: missing key record");
    }
    std::string key = line.substr(4);
    if (!std::getline(is, line) || line.rfind("payload ", 0) != 0
        || line.size() == 8) {
        return R::Err(ErrorKind::BadInput,
                      "store record: missing payload record");
    }
    std::string payload = line.substr(8);
    // The checksum catches in-place corruption (a flipped bit in the
    // key or payload) that would otherwise parse as a valid record.
    if (!std::getline(is, line) || line.rfind("sum ", 0) != 0) {
        return R::Err(ErrorKind::BadInput,
                      "store record: missing sum record");
    }
    if (line.substr(4) != fnv1aHex(key + '\n' + payload)) {
        return R::Err(ErrorKind::BadInput,
                      "store record: checksum mismatch (garbled)");
    }
    // The end sentinel proves the sum line was not truncated
    // mid-write; without it the record is torn and must be recomputed.
    if (!std::getline(is, line) || line != "end") {
        return R::Err(ErrorKind::BadInput,
                      "store record: missing end sentinel");
    }
    if (std::getline(is, line) && !line.empty()) {
        return R::Err(ErrorKind::BadInput,
                      "store record: trailing garbage");
    }
    return R::Ok({std::move(key), std::move(payload)});
}

std::string
ResultStore::recordFileName(const std::string &key)
{
    return "r-" + fnv1aHex(key) + ".rec";
}

std::string
ResultStore::recordPath(const std::string &key) const
{
    if (options.dir.empty())
        return "";
    const std::filesystem::path path =
        std::filesystem::path(options.dir) / recordFileName(key);
    return path.string();
}

void
ResultStore::remember(const std::string &key, const std::string &payload)
{
    // Caller holds the mutex.
    if (options.memCapacity == 0)
        return;
    auto it = lruIndex.find(key);
    if (it != lruIndex.end()) {
        it->second->second = payload;
        lru.splice(lru.begin(), lru, it->second);
        return;
    }
    lru.emplace_front(key, payload);
    lruIndex[key] = lru.begin();
    while (lru.size() > options.memCapacity) {
        lruIndex.erase(lru.back().first);
        lru.pop_back();
        ++counters.evictions;
        storeMetrics().evictions.add(1);
    }
}

std::optional<std::string>
ResultStore::lookup(const std::string &key)
{
    const std::lock_guard<std::mutex> lock(mutex);

    if (auto it = lruIndex.find(key); it != lruIndex.end()) {
        ++counters.memoryHits;
        storeMetrics().memoryHits.add(1);
        lru.splice(lru.begin(), lru, it->second);
        return it->second->second;
    }

    const std::string path = recordPath(key);
    if (!path.empty()) {
        std::ifstream file(path, std::ios::binary);
        if (file) {
            std::ostringstream contents;
            contents << file.rdbuf();
            auto parsed = parseRecord(contents.str());
            if (!parsed) {
                // Truncated / wrong-version / damaged record: a miss
                // the caller's recompute-and-store will repair. Unlink
                // the damaged file eagerly so readers that never
                // recompute (fsck-less query fleets) stop re-parsing
                // it; a failed unlink is tolerable — the file is
                // rewritten on the next store() anyway.
                ++counters.corruptRecords;
                storeMetrics().corruptRecords.add(1);
                try {
                    static const crashpoint::CrashPoint repair_point(
                        "store.repair_unlink");
                    repair_point.fire();
                    if (std::remove(path.c_str()) == 0) {
                        ++counters.repairUnlinks;
                        storeMetrics().repairUnlinks.add(1);
                    }
                } catch (const DavfError &) {
                    // The armed crash point threw; the record stays
                    // for the next reader (or fsck) to clean up.
                }
            } else if (parsed.value().first != key) {
                // NOTE: deliberately *not* unlinked — a hash collision
                // means this file holds some other key's valid record.
                // A filename-hash collision stores someone else's
                // result here; serving it would poison the cache.
                ++counters.corruptRecords;
                storeMetrics().corruptRecords.add(1);
            } else {
                ++counters.diskHits;
                storeMetrics().diskHits.add(1);
                remember(key, parsed.value().second);
                return std::move(parsed.value().second);
            }
        }
    }

    ++counters.misses;
    storeMetrics().misses.add(1);
    return std::nullopt;
}

void
ResultStore::store(const std::string &key, const std::string &payload)
{
    const std::lock_guard<std::mutex> lock(mutex);
    remember(key, payload);
    const std::string path = recordPath(key);
    if (!path.empty()) {
        // tmp+rename keeps concurrent writers (other server processes
        // sharing the directory) safe: a reader only ever sees a
        // complete old or complete new record. Same-process writers are
        // serialized by the store mutex (the tmp name is per-pid).
        //
        // A failed publish (ENOSPC, EIO, armed crash point) is counted
        // and swallowed: the result was computed and still reaches the
        // caller through the memory tier — a full disk must degrade a
        // serve/campaign to cache misses, never kill it.
        try {
            static const crashpoint::CrashPoint publish_point(
                "store.publish");
            publish_point.fire();
            writeFileAtomic(path, serializeRecord(key, payload));
        } catch (const DavfError &error) {
            ++counters.writeFailures;
            storeMetrics().writeFailures.add(1);
            davf_warn("store record publish to '", path,
                      "' failed (serving from memory): ",
                      error.what());
            return;
        }
    }
    ++counters.writes;
    storeMetrics().writes.add(1);
}

StoreStats
ResultStore::stats() const
{
    const std::lock_guard<std::mutex> lock(mutex);
    return counters;
}

} // namespace davf::service
