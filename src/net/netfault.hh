/**
 * @file
 * Deterministic network-fault injection for the distributed fabric.
 *
 * Mirrors the engine's DAVF_TEST_FAULT hook (core/vulnerability.cc):
 * the environment variable
 *
 *   DAVF_TEST_NETFAULT=<drop|stall|garble|disconnect>@<node>[:<cycle>]
 *
 * arms exactly one fault in the *worker* process whose node name
 * matches <node> ('*' matches any), firing on the first shard whose
 * injection cycle matches <cycle> ('*' or omitted matches any). The
 * fault fires once per process, so every coordinator failure path is
 * exercised deterministically:
 *
 *  - drop        compute the shard but never send the reply and go
 *                silent: the coordinator's heartbeat timeout fires;
 *  - stall       keep heartbeating but never reply: only the shard
 *                deadline (--shard-timeout-ms) catches it — the
 *                slow-node case;
 *  - garble      reply with an unparseable payload: the coordinator
 *                must classify it BadOutput and re-dispatch;
 *  - disconnect  close the socket before replying and exit: the
 *                dead-node (kill -9 equivalent) case.
 *
 * Test-only; parsing is lenient about nothing — a malformed spec is
 * a warning and no fault (the hook must never break a real run).
 */

#ifndef DAVF_NET_NETFAULT_HH
#define DAVF_NET_NETFAULT_HH

#include <cstdint>
#include <string>

namespace davf::net {

/** What the armed fault does at its trigger point. */
enum class NetFaultKind : uint8_t {
    None,
    Drop,
    Stall,
    Garble,
    Disconnect,
};

/** One parsed DAVF_TEST_NETFAULT spec. */
struct NetFault
{
    NetFaultKind kind = NetFaultKind::None;
    std::string node = "*"; ///< Node name, or '*' for any.
    bool anyCycle = true;
    uint64_t cycle = 0; ///< Matched when !anyCycle.

    /** Does this fault apply to @p node_name computing @p cycle? */
    bool matches(const std::string &node_name,
                 uint64_t shard_cycle) const;
};

/**
 * Parse @p text (the env value); nullptr/empty or malformed input
 * yields kind None (malformed input additionally warns).
 */
NetFault parseNetFault(const char *text);

/** The process-wide armed fault, read from DAVF_TEST_NETFAULT once. */
const NetFault &armedNetFault();

/**
 * True exactly once: the armed fault matches and has not fired yet.
 * Workers call this per shard and apply the returned kind.
 */
bool netFaultFires(const std::string &node_name, uint64_t shard_cycle);

} // namespace davf::net

#endif // DAVF_NET_NETFAULT_HH
