#include "result_store.hh"

#include <filesystem>
#include <fstream>
#include <sstream>

#include <cstdio>

#include "obs/metrics.hh"
#include "store/layout.hh"
#include "util/atomic_file.hh"
#include "util/crashpoint.hh"
#include "util/logging.hh"

namespace davf::service {

namespace {

/** Store metric handles, mirroring StoreStats (docs/OBSERVABILITY.md). */
struct StoreMetrics
{
    obs::Counter memoryHits{"store.memory_hits"};
    obs::Counter diskHits{"store.disk_hits"};
    obs::Counter misses{"store.misses"};
    obs::Counter evictions{"store.evictions"};
    obs::Counter corruptRecords{"store.corrupt_records"};
    obs::Counter futureRecords{"store.future_records"};
    obs::Counter writes{"store.writes"};
    obs::Counter writeFailures{"store.write_failures"};
    obs::Counter repairUnlinks{"store.repair_unlinks"};
    obs::Gauge lruEntries{"store.lru_entries"};
    obs::Gauge lruBytes{"store.lru_bytes"};
};

StoreMetrics &
storeMetrics()
{
    static StoreMetrics *const metrics = new StoreMetrics();
    return *metrics;
}

/** Does @p dir hold any legacy per-file records ("r-*.rec")? */
bool
hasLegacyRecords(const std::string &dir)
{
    std::error_code ec;
    for (std::filesystem::directory_iterator it(dir, ec), end;
         !ec && it != end; it.increment(ec)) {
        const std::string name = it->path().filename().string();
        if (name.rfind("r-", 0) == 0 && name.size() > 6
            && name.compare(name.size() - 4, 4, ".rec") == 0) {
            return true;
        }
    }
    return false;
}

} // namespace

std::optional<StoreFormat>
parseStoreFormat(const std::string &text)
{
    if (text == "auto")
        return StoreFormat::Auto;
    if (text == "legacy")
        return StoreFormat::Legacy;
    if (text == "index")
        return StoreFormat::Index;
    return std::nullopt;
}

ResultStore::ResultStore(Options the_options)
    : options(std::move(the_options))
{
    if (options.dir.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(options.dir, ec);
    if (ec) {
        davf_throw(ErrorKind::Io, "cannot create store dir '",
                   options.dir, "': ", ec.message());
    }

    StoreFormat format = options.format;
    if (format == StoreFormat::Auto) {
        // Follow the directory: an index wins outright; a legacy
        // directory stays legacy until migrated (no surprise format
        // flips under existing deployments); empty starts indexed.
        if (davf::store::IndexStore::present(options.dir))
            format = StoreFormat::Index;
        else if (hasLegacyRecords(options.dir))
            format = StoreFormat::Legacy;
        else
            format = StoreFormat::Index;
    }
    if (format == StoreFormat::Index) {
        try {
            index = std::make_unique<davf::store::IndexStore>(
                davf::store::IndexStore::Options{.dir = options.dir});
        } catch (const DavfError &error) {
            // Most likely another process owns the index lock. Legacy
            // per-file records keep this process fully functional, and
            // the lock owner absorbs our records on sight.
            davf_warn("cannot open indexed store in '", options.dir,
                      "' (falling back to legacy per-file records): ",
                      error.what());
        }
    }
}

std::string
ResultStore::serializeRecord(const std::string &key,
                             const std::string &payload,
                             uint32_t text_version)
{
    return davf::store::serializeRecordText(key, payload, text_version);
}

Result<std::pair<std::string, std::string>>
ResultStore::parseRecord(const std::string &text)
{
    return davf::store::parseRecordText(text);
}

std::string
ResultStore::recordFileName(const std::string &key)
{
    return davf::store::legacyRecordFileName(key);
}

std::string
ResultStore::recordPath(const std::string &key) const
{
    if (options.dir.empty())
        return "";
    const std::filesystem::path path =
        std::filesystem::path(options.dir) / recordFileName(key);
    return path.string();
}

void
ResultStore::remember(const std::string &key, const std::string &payload)
{
    // Caller holds the mutex.
    if (options.memCapacity == 0)
        return;
    auto it = lruIndex.find(key);
    if (it != lruIndex.end()) {
        lruBytes += payload.size();
        lruBytes -= it->second->second.size();
        it->second->second = payload;
        lru.splice(lru.begin(), lru, it->second);
    } else {
        lru.emplace_front(key, payload);
        lruIndex[key] = lru.begin();
        lruBytes += key.size() + payload.size();
        while (lru.size() > options.memCapacity) {
            lruBytes -=
                lru.back().first.size() + lru.back().second.size();
            lruIndex.erase(lru.back().first);
            lru.pop_back();
            ++counters.evictions;
            storeMetrics().evictions.add(1);
        }
    }
    storeMetrics().lruEntries.set(static_cast<int64_t>(lru.size()));
    storeMetrics().lruBytes.set(static_cast<int64_t>(lruBytes));
}

std::optional<std::string>
ResultStore::lookupLegacyFile(const std::string &key)
{
    const std::string path = recordPath(key);
    if (path.empty())
        return std::nullopt;
    std::ifstream file(path, std::ios::binary);
    if (!file)
        return std::nullopt;
    std::ostringstream contents;
    contents << file.rdbuf();
    auto parsed = parseRecord(contents.str());
    if (!parsed && davf::store::recordTextFutureVersion(contents.str())) {
        // Written by a newer binary sharing this directory: a miss,
        // not damage. The file must survive — the writer still serves
        // it — so no unlink and no corrupt tally.
        {
            const std::lock_guard<std::mutex> lock(mutex);
            ++counters.futureRecords;
        }
        storeMetrics().futureRecords.add(1);
        return std::nullopt;
    }
    if (!parsed) {
        // Truncated / wrong-version / damaged record: a miss the
        // caller's recompute-and-store will repair. Unlink the damaged
        // file eagerly so readers that never recompute (fsck-less
        // query fleets) stop re-parsing it; a failed unlink is
        // tolerable — the file is rewritten on the next store() anyway.
        {
            const std::lock_guard<std::mutex> lock(mutex);
            ++counters.corruptRecords;
        }
        storeMetrics().corruptRecords.add(1);
        try {
            static const crashpoint::CrashPoint repair_point(
                "store.repair_unlink");
            repair_point.fire();
            if (std::remove(path.c_str()) == 0) {
                const std::lock_guard<std::mutex> lock(mutex);
                ++counters.repairUnlinks;
                storeMetrics().repairUnlinks.add(1);
            }
        } catch (const DavfError &) {
            // The armed crash point threw; the record stays for the
            // next reader (or fsck) to clean up.
        }
        return std::nullopt;
    }
    if (parsed.value().first != key) {
        // NOTE: deliberately *not* unlinked — a hash collision means
        // this file holds some other key's valid record. A
        // filename-hash collision stores someone else's result here;
        // serving it would poison the cache.
        {
            const std::lock_guard<std::mutex> lock(mutex);
            ++counters.corruptRecords;
        }
        storeMetrics().corruptRecords.add(1);
        return std::nullopt;
    }
    return std::move(parsed.value().second);
}

std::optional<std::string>
ResultStore::lookup(const std::string &key)
{
    {
        const std::lock_guard<std::mutex> lock(mutex);
        if (auto it = lruIndex.find(key); it != lruIndex.end()) {
            ++counters.memoryHits;
            storeMetrics().memoryHits.add(1);
            lru.splice(lru.begin(), lru, it->second);
            return it->second->second;
        }
    }

    if (index != nullptr) {
        using Status = davf::store::IndexStore::LookupStatus;
        auto looked = index->lookup(key);
        switch (looked.status) {
          case Status::Hit: {
            const std::lock_guard<std::mutex> lock(mutex);
            ++counters.diskHits;
            storeMetrics().diskHits.add(1);
            remember(key, looked.payload);
            return std::move(looked.payload);
          }
          case Status::Future: {
            const std::lock_guard<std::mutex> lock(mutex);
            ++counters.futureRecords;
            storeMetrics().futureRecords.add(1);
            break;
          }
          case Status::Corrupt:
          case Status::Collision: {
            // Both degrade to a miss, exactly like their legacy
            // counterparts (the corrupt slot was already dropped).
            const std::lock_guard<std::mutex> lock(mutex);
            ++counters.corruptRecords;
            storeMetrics().corruptRecords.add(1);
            break;
          }
          case Status::Miss: {
            // A stray legacy record file can still hold the answer: a
            // process that lost the index lock writes per-file records
            // into the same directory, and interrupted migrations
            // leave some behind. Absorb it into the index on sight.
            auto payload = lookupLegacyFile(key);
            if (payload) {
                try {
                    index->put(key, *payload);
                    std::remove(recordPath(key).c_str());
                } catch (const DavfError &error) {
                    davf_warn("cannot absorb legacy record for '", key,
                              "' into the index (leaving the file): ",
                              error.what());
                }
                const std::lock_guard<std::mutex> lock(mutex);
                ++counters.diskHits;
                storeMetrics().diskHits.add(1);
                remember(key, *payload);
                return payload;
            }
            break;
          }
        }
    } else {
        auto payload = lookupLegacyFile(key);
        if (payload) {
            const std::lock_guard<std::mutex> lock(mutex);
            ++counters.diskHits;
            storeMetrics().diskHits.add(1);
            remember(key, *payload);
            return payload;
        }
    }

    const std::lock_guard<std::mutex> lock(mutex);
    ++counters.misses;
    storeMetrics().misses.add(1);
    return std::nullopt;
}

void
ResultStore::store(const std::string &key, const std::string &payload,
                   uint32_t text_version)
{
    // A failed publish (ENOSPC, EIO, armed crash point) is counted and
    // swallowed in both formats: the result was computed and still
    // reaches the caller through the memory tier — a full disk must
    // degrade a serve/campaign to cache misses, never kill it.
    if (index != nullptr) {
        {
            const std::lock_guard<std::mutex> lock(mutex);
            remember(key, payload);
        }
        try {
            static const crashpoint::CrashPoint publish_point(
                "store.publish");
            publish_point.fire();
            if (text_version == davf::store::kRecordTextVersion)
                index->put(key, payload);
            else
                index->putRecord(key, serializeRecord(key, payload,
                                                      text_version));
        } catch (const DavfError &error) {
            const std::lock_guard<std::mutex> lock(mutex);
            ++counters.writeFailures;
            storeMetrics().writeFailures.add(1);
            davf_warn("store record publish to index in '", options.dir,
                      "' failed (serving from memory): ", error.what());
            return;
        }
        const std::lock_guard<std::mutex> lock(mutex);
        ++counters.writes;
        storeMetrics().writes.add(1);
        return;
    }

    const std::lock_guard<std::mutex> lock(mutex);
    remember(key, payload);
    const std::string path = recordPath(key);
    if (!path.empty()) {
        // tmp+rename keeps concurrent writers (other server processes
        // sharing the directory) safe: a reader only ever sees a
        // complete old or complete new record. Same-process writers are
        // serialized by the store mutex (the tmp name is per-pid).
        try {
            static const crashpoint::CrashPoint publish_point(
                "store.publish");
            publish_point.fire();
            writeFileAtomic(path,
                            serializeRecord(key, payload, text_version));
        } catch (const DavfError &error) {
            ++counters.writeFailures;
            storeMetrics().writeFailures.add(1);
            davf_warn("store record publish to '", path,
                      "' failed (serving from memory): ", error.what());
            return;
        }
    }
    ++counters.writes;
    storeMetrics().writes.add(1);
}

StoreStats
ResultStore::stats() const
{
    const std::lock_guard<std::mutex> lock(mutex);
    StoreStats snapshot = counters;
    snapshot.lruEntries = lru.size();
    snapshot.lruBytes = lruBytes;
    return snapshot;
}

std::optional<davf::store::IndexStoreStats>
ResultStore::indexStats() const
{
    if (index == nullptr)
        return std::nullopt;
    return index->stats();
}

} // namespace davf::service
