/**
 * @file
 * Crash-safe file replacement: write to a temporary sibling, fsync,
 * rename over the target, fsync the parent directory. A reader (or a
 * resumed campaign) therefore only ever sees either the complete old
 * contents or the complete new contents — never a truncated checkpoint
 * or a half CSV row — and a record that was published stays published
 * across a power cut (the directory fsync pins the rename).
 *
 * Every step is guarded by a named crash point
 * (util/crashpoint.hh: atomic_file.pre_tmp_write, .write, .pre_fsync,
 * .pre_rename, .post_rename), which is how the recovery test matrix
 * proves a kill at any instant of this sequence is survivable.
 */

#ifndef DAVF_UTIL_ATOMIC_FILE_HH
#define DAVF_UTIL_ATOMIC_FILE_HH

#include <string>
#include <string_view>

namespace davf {

/**
 * Atomically replace @p path with @p contents (tmp file + rename +
 * parent-directory fsync). Throws DavfError{Io} on any filesystem
 * failure; the target is left untouched in that case.
 */
void writeFileAtomic(const std::string &path, std::string_view contents);

} // namespace davf

#endif // DAVF_UTIL_ATOMIC_FILE_HH
