/**
 * @file
 * The gate-level netlist graph.
 *
 * A netlist is a set of cells (gates, flip-flops, primary inputs/outputs,
 * behavioral blocks) connected by nets. Following the paper's circuit model
 * (§IV-A), a **wire** is a single driver-pin-to-sink-pin connection: a net
 * with k sinks contributes k wires, each with its own propagation delay and
 * each a distinct small-delay-fault injection site.
 *
 * State elements are the sampled-at-the-clock-edge storage points of the
 * design: one per DFF/DFFE (its Q register), one per behavioral-block input
 * pin (the block samples the pin at the edge), and one per primary-output
 * pin (the testbench observes outputs at the edge). The dynamically
 * reachable set of an SDF and the fault-forcing interface of the cycle
 * simulator are both expressed in terms of these StateElemIds.
 */

#ifndef DAVF_NETLIST_NETLIST_HH
#define DAVF_NETLIST_NETLIST_HH

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/behavioral.hh"
#include "netlist/cell.hh"

namespace davf {

using CellId = uint32_t;
using NetId = uint32_t;
using WireId = uint32_t;
using StateElemId = uint32_t;

/** Sentinel for "no such object". */
constexpr uint32_t kInvalidId = 0xffffffffu;

/** One sink pin of a net. */
struct Sink
{
    CellId cell;
    uint16_t pin;
};

/** A cell instance. */
struct Cell
{
    CellType type;
    bool resetValue = false;       ///< Initial Q value (sequential cells).
    std::string name;              ///< Hierarchical name, '/'-separated.
    std::vector<NetId> inputs;     ///< Input nets, by pin index.
    std::vector<NetId> outputs;    ///< Output nets, by pin index.
};

/** A net: one driver pin, any number of sinks. */
struct Net
{
    std::string name;
    CellId driver = kInvalidId;
    uint16_t driverPin = 0;
    std::vector<Sink> sinks;       ///< Populated by finalize().
    WireId firstWire = kInvalidId; ///< WireId of sinks[0]; contiguous after.
};

/** A wire: the (net, sink) pair identifying one driver->sink connection. */
struct Wire
{
    NetId net;
    uint32_t sinkIndex;
};

/** Kinds of state element (see file comment). */
enum class StateElemKind : uint8_t {
    Flop,        ///< Q register of a DFF/DFFE cell.
    BehavInput,  ///< Sampled input pin of a behavioral block.
    OutputPort,  ///< Observed primary-output pin.
};

/** A state element: a value sampled at every clock edge. */
struct StateElem
{
    StateElemKind kind;
    CellId cell;
    uint16_t pin;  ///< Input pin index (BehavInput); 0 otherwise.
};

/**
 * The netlist container. Build with addNet()/addCell(), then finalize();
 * all analysis passes require a finalized netlist and the netlist is
 * immutable afterwards.
 */
class Netlist
{
  public:
    /** @name Construction */
    /// @{

    /** Create a net named @p name. */
    NetId addNet(std::string name);

    /**
     * Create a cell. Output nets must not already have a driver; input
     * counts are validated against the cell type.
     *
     * @param reset_value initial Q value for sequential cells.
     */
    CellId addCell(CellType type, std::string name,
                   std::span<const NetId> inputs,
                   std::span<const NetId> outputs,
                   bool reset_value = false);

    /** Create a behavioral block cell backed by @p model. */
    CellId addBehavioral(std::string name, BehavioralModelPtr model,
                         std::span<const NetId> inputs,
                         std::span<const NetId> outputs);

    /**
     * Remove combinational cells (and their output nets) from which no
     * sampled endpoint — flop input, behavioral input, primary output —
     * is reachable. Synthesis flows perform this sweep implicitly;
     * without it, dead datapath slices (e.g. unused adder sum bits
     * behind a comparator) would count as SDF injection sites that can
     * never be DelayACE, diluting every per-structure metric. Must be
     * called before finalize(); invalidates previously returned
     * CellIds/NetIds.
     *
     * @return number of cells removed.
     */
    size_t sweepDeadLogic();

    /**
     * Insert buffer trees on every net with more than @p max_fanout
     * sinks, splitting sinks into groups behind BUF cells (recursively,
     * so no net ends up above the cap). This emulates the high-fanout
     * buffering every synthesis flow performs; without it the linear
     * capacitive-load delay model would make wide select/control nets
     * absurdly slow. Buffers inherit the driving cell's hierarchical
     * name (plus a "_fbuf" suffix), so they stay inside the driver's
     * microarchitectural structure and are themselves SDF injection
     * sites. Must be called before finalize().
     */
    void insertFanoutBuffers(unsigned max_fanout = 8);

    /**
     * Validate the design, build sink lists, enumerate wires and state
     * elements, and levelize the combinational cells. Fails on undriven
     * nets, multiply-driven nets, or combinational loops.
     */
    void finalize();

    /// @}
    /** @name Queries (finalized netlist) */
    /// @{

    bool finalized() const { return isFinalized; }

    size_t numCells() const { return cells.size(); }
    size_t numNets() const { return nets.size(); }
    size_t numWires() const { return wires.size(); }
    size_t numStateElems() const { return stateElems.size(); }

    const Cell &cell(CellId id) const { return cells[id]; }
    const Net &net(NetId id) const { return nets[id]; }
    const Wire &wire(WireId id) const { return wires[id]; }
    const StateElem &stateElem(StateElemId id) const
    {
        return stateElems[id];
    }

    /** Behavioral model attached to @p id (must be a Behav cell). */
    const BehavioralModelPtr &behavModel(CellId id) const;

    /** Driving cell of the net under wire @p id. */
    CellId wireDriver(WireId id) const
    {
        return nets[wires[id].net].driver;
    }

    /** Sink pin of wire @p id. */
    const Sink &wireSink(WireId id) const
    {
        return nets[wires[id].net].sinks[wires[id].sinkIndex];
    }

    /** Wire feeding input pin @p pin of cell @p id. */
    WireId inputWire(CellId id, uint16_t pin) const
    {
        return inWires[id][pin];
    }

    /** Net fanout (number of sinks == number of wires of the net). */
    size_t fanout(NetId id) const { return nets[id].sinks.size(); }

    /** Human-readable "netname -> cellname.pin" description of a wire. */
    std::string wireName(WireId id) const;

    /** Combinational cells in topological (evaluation) order. */
    const std::vector<CellId> &topoOrder() const { return topo; }

    /** Topological level of a combinational cell (0 = sources). */
    unsigned level(CellId id) const { return levels[id]; }

    /** All sequential cells (DFF/DFFE/Behav). */
    const std::vector<CellId> &seqCells() const { return seqs; }

    /** All primary-input cells. */
    const std::vector<CellId> &inputCells() const { return inputs; }

    /** All primary-output cells. */
    const std::vector<CellId> &outputCells() const { return outputs; }

    /** State element of a DFF/DFFE cell. */
    StateElemId flopStateElem(CellId id) const;

    /** State element of a behavioral input pin / output-port pin. */
    StateElemId pinStateElem(CellId id, uint16_t pin) const;

    /** Name of a state element (cell name, plus pin for BehavInput). */
    std::string stateElemName(StateElemId id) const;

    /** Look up a cell by exact name; kInvalidId if absent. */
    CellId findCell(const std::string &name) const;

    /** Look up a net by exact name; kInvalidId if absent. */
    NetId findNet(const std::string &name) const;

    /**
     * Downstream combinational cone of a wire: every combinational cell
     * reachable from the wire's sink pin, plus every state element whose
     * sampled pin is reachable. DFF/DFFE data *and* enable pins both map
     * to the flop's state element.
     *
     * @param id          the wire to start from.
     * @param cone_cells  output: reachable combinational cells, topological.
     * @param reached     output: reachable state elements (deduplicated).
     */
    void combCone(WireId id, std::vector<CellId> &cone_cells,
                  std::vector<StateElemId> &reached) const;

    /** Wires of the design whose driving cell name starts with @p prefix. */
    std::vector<WireId> wiresByPrefix(const std::string &prefix) const;

    /** Cells whose name starts with @p prefix. */
    std::vector<CellId> cellsByPrefix(const std::string &prefix) const;

    /** Flop state elements whose cell name starts with @p prefix. */
    std::vector<StateElemId>
    flopsByPrefix(const std::string &prefix) const;

    /** Emit a Graphviz DOT rendering (small designs / debugging). */
    std::string toDot() const;

    /// @}

  private:
    void checkNotFinalized() const;

    bool isFinalized = false;

    std::vector<Cell> cells;
    std::vector<Net> nets;
    std::vector<Wire> wires;
    std::vector<StateElem> stateElems;
    std::vector<std::vector<WireId>> inWires;

    std::vector<CellId> topo;
    std::vector<unsigned> levels;
    std::vector<CellId> seqs;
    std::vector<CellId> inputs;
    std::vector<CellId> outputs;

    /** Behavioral models, keyed by cell id. */
    std::unordered_map<CellId, BehavioralModelPtr> behavModels;

    /** flop cell id -> state elem id. */
    std::unordered_map<CellId, StateElemId> flopElems;

    /** (cell id, pin) -> state elem id for BehavInput/OutputPort. */
    std::unordered_map<uint64_t, StateElemId> pinElems;

    std::unordered_map<std::string, CellId> cellByName;
    std::unordered_map<std::string, NetId> netByName;
};

} // namespace davf

#endif // DAVF_NETLIST_NETLIST_HH
