#include "trace.hh"

#include <cstdio>
#include <deque>
#include <mutex>
#include <vector>

namespace davf::obs {

namespace {

/** Total event cap across all threads; excess spans count as dropped. */
constexpr size_t kMaxEvents = size_t(1) << 20;

/**
 * One thread's event buffer. Buffers live in a process-lifetime deque
 * (stable addresses) and are never destroyed, so events survive worker
 * threads that exit before export (parallelFor tears its pool down).
 */
struct ThreadBuffer {
    explicit ThreadBuffer(uint32_t tid) : tid(tid) {}

    uint32_t tid;
    std::mutex mutex; // Uncontended except against export/clear.
    std::vector<TraceEvent> events;
};

struct TraceState {
    std::mutex mutex;
    std::deque<ThreadBuffer> buffers;
    std::atomic<size_t> event_count{0};
    std::atomic<uint64_t> dropped_count{0};
    std::atomic<uint64_t> origin_ns{0};
};

TraceState &
state()
{
    static TraceState *const trace_state = new TraceState();
    return *trace_state;
}

ThreadBuffer &
threadBuffer()
{
    thread_local ThreadBuffer *buffer = [] {
        TraceState &ts = state();
        std::lock_guard<std::mutex> lock(ts.mutex);
        return &ts.buffers.emplace_back(
            static_cast<uint32_t>(ts.buffers.size()));
    }();
    return *buffer;
}

} // namespace

std::atomic<bool> Trace::tracing{false};

void
Trace::setEnabled(bool on)
{
    if (on && !tracing.load(std::memory_order_relaxed))
        state().origin_ns.store(ScopedTimeNs::nowNs(),
                                std::memory_order_relaxed);
    tracing.store(on, std::memory_order_relaxed);
}

void
Trace::record(const char *name, uint64_t start_ns, uint64_t dur_ns)
{
    TraceState &ts = state();
    if (ts.event_count.fetch_add(1, std::memory_order_relaxed)
        >= kMaxEvents) {
        ts.dropped_count.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    ThreadBuffer &buffer = threadBuffer();
    std::lock_guard<std::mutex> lock(buffer.mutex);
    buffer.events.push_back({name, start_ns, dur_ns, buffer.tid});
}

std::string
Trace::toChromeJson()
{
    TraceState &ts = state();
    std::vector<TraceEvent> events;
    {
        std::lock_guard<std::mutex> lock(ts.mutex);
        for (ThreadBuffer &buffer : ts.buffers) {
            std::lock_guard<std::mutex> buffer_lock(buffer.mutex);
            events.insert(events.end(), buffer.events.begin(),
                          buffer.events.end());
        }
    }
    const uint64_t origin = ts.origin_ns.load(std::memory_order_relaxed);

    std::string out = "{\"traceEvents\":[";
    char line[256];
    bool first = true;
    for (const TraceEvent &event : events) {
        // Chrome expects microseconds; keep nanosecond precision with a
        // fixed-point fraction (locale-independent, always valid JSON).
        const uint64_t ts_ns =
            event.start_ns >= origin ? event.start_ns - origin : 0;
        std::snprintf(line, sizeof(line),
                      "%s{\"name\":\"%s\",\"cat\":\"davf\",\"ph\":\"X\","
                      "\"pid\":1,\"tid\":%u,\"ts\":%llu.%03llu,"
                      "\"dur\":%llu.%03llu}",
                      first ? "" : ",", event.name, event.tid,
                      static_cast<unsigned long long>(ts_ns / 1000),
                      static_cast<unsigned long long>(ts_ns % 1000),
                      static_cast<unsigned long long>(event.dur_ns / 1000),
                      static_cast<unsigned long long>(event.dur_ns % 1000));
        out += line;
        first = false;
    }
    out += "],\"displayTimeUnit\":\"ms\"}";
    return out;
}

void
Trace::clear()
{
    TraceState &ts = state();
    std::lock_guard<std::mutex> lock(ts.mutex);
    for (ThreadBuffer &buffer : ts.buffers) {
        std::lock_guard<std::mutex> buffer_lock(buffer.mutex);
        buffer.events.clear();
    }
    ts.event_count.store(0, std::memory_order_relaxed);
    ts.dropped_count.store(0, std::memory_order_relaxed);
}

uint64_t
Trace::dropped()
{
    return state().dropped_count.load(std::memory_order_relaxed);
}

} // namespace davf::obs
