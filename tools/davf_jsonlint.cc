/**
 * @file
 * Strict JSON well-formedness checker for the repo's emitters — report
 * JSON from davf_run/davf_serve, metric snapshots, Chrome traces, and
 * the scheduler's stats verb. Exists for CI: the bug class it catches
 * is printf-style emitters leaking `nan`/`inf` tokens (not JSON) into
 * reports, which jq and browsers reject.
 *
 * Usage:
 *   davf_jsonlint [FILE...]
 *
 * With no arguments, validates stdin. Exit 0 if every input is exactly
 * one well-formed JSON value (plus trailing whitespace), 1 otherwise;
 * each failure is reported with its byte offset.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "util/json.hh"

using namespace davf;

namespace {

bool
checkOne(const std::string &label, const std::string &text)
{
    const JsonCheck check = jsonValidate(text);
    if (check) {
        return true;
    }
    std::fprintf(stderr, "%s: %s at byte offset %zu\n", label.c_str(),
                 check.message.c_str(), check.offset);
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    bool ok = true;
    if (argc < 2) {
        std::ostringstream contents;
        contents << std::cin.rdbuf();
        ok = checkOne("<stdin>", contents.str());
    } else {
        for (int i = 1; i < argc; ++i) {
            std::ifstream file(argv[i], std::ios::binary);
            if (!file) {
                std::fprintf(stderr, "%s: cannot open\n", argv[i]);
                ok = false;
                continue;
            }
            std::ostringstream contents;
            contents << file.rdbuf();
            ok = checkOne(argv[i], contents.str()) && ok;
        }
    }
    return ok ? 0 : 1;
}
