/**
 * @file
 * Bit-parallel (64-lane) two-valued gate-level simulator.
 *
 * The timing-agnostic GroupACE step dominates DelayAVF runtime (the
 * paper's Fig. 8 cost breakdown): every dynamically reachable error set
 * must be re-simulated to program completion. Those continuations all
 * start from the *same* golden snapshot and differ only in the values
 * forced at one clock edge (or in one flipped flop), which makes them a
 * textbook fit for word-level boolean evaluation: pack one scenario per
 * bit of a `uint64_t`, store one word per net, and evaluate the netlist
 * once for all 64 scenarios.
 *
 * Conventions used by the vulnerability engine:
 *
 *  - **lane 0 carries the golden execution** (no fault). It re-converges
 *    with the recorded golden trajectory immediately, so it costs
 *    nothing and doubles as an in-batch sanity invariant (its verdict
 *    must always be "no failure").
 *  - **lanes 1..N-1 carry faulty continuations**, seeded by per-lane
 *    sampled-value forces at the injection edge (GroupACE) or per-lane
 *    flop flips (sAVF).
 *  - **lane retirement**: a lane whose verdict is settled is dropped
 *    from the behavioral-clock mask. Gate evaluation is bitwise and
 *    costs the same for 1 or 64 lanes, so retired lanes are simply left
 *    to compute garbage that nobody observes; per-lane costs (the
 *    behavioral models, workload observation) stop immediately.
 *
 * Lane semantics are exactly those of CycleSimulator: a VecSimulator
 * lane stepped with the same forces as a scalar CycleSimulator holds
 * bit-identical net values and behavioral state every cycle (asserted
 * by tests/test_vec_sim.cc property tests).
 *
 * Behavioral blocks are inherently scalar (clockEdge over bool
 * vectors), so each lane owns its own clone; their cost is the one
 * per-lane component of a step. Gate-dominated designs — the ones worth
 * vectorizing — amortize it away.
 */

#ifndef DAVF_SIM_VEC_SIM_HH
#define DAVF_SIM_VEC_SIM_HH

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "netlist/netlist.hh"
#include "sim/cycle_sim.hh"

namespace davf {

/** 64-lane bit-parallel simulator over a finalized netlist. */
class VecSimulator
{
  public:
    /** Hard lane cap: one scenario per bit of the word type. */
    static constexpr unsigned kMaxLanes = 64;

    /** One bit per lane; bit l set = lane l selected. */
    using LaneMask = uint64_t;

    /** A forced sampled value for one lane at the next step(). */
    struct LaneForce
    {
        uint8_t lane;
        StateElemId elem;
        bool value;
    };

    /**
     * @param max_lanes lanes to provision behavioral clones for
     *                  (2..kMaxLanes). Gate evaluation always runs full
     *                  words; this only bounds the per-lane state.
     */
    explicit VecSimulator(const Netlist &netlist,
                          unsigned max_lanes = kMaxLanes);

    /** Provisioned lane count. */
    unsigned maxLanes() const { return laneCap; }

    /** Lanes seeded by the last seed() (kMaxLanes after reset()). */
    unsigned lanes() const { return laneCount; }

    /** All-lanes mask for the seeded lane count. */
    LaneMask allLanes() const
    {
        return laneCount >= 64 ? ~uint64_t{0}
                               : (uint64_t{1} << laneCount) - 1;
    }

    /** Reset every lane to the deterministic power-on state. */
    void reset();

    /**
     * Broadcast a scalar snapshot into lanes [0, @p num_lanes): every
     * lane starts from the identical complete state (net values,
     * behavioral internals, cycle count) — the fan-out point of a
     * fault-injection batch.
     */
    void seed(const CycleSimulator::Snapshot &snap, unsigned num_lanes);

    /** Drive a primary-input net with a per-lane bit pattern. */
    void setInput(NetId id, LaneMask value_bits);

    /**
     * Advance one clock edge on every lane: sample every state element,
     * apply the per-lane @p forces overrides, commit, and settle
     * combinational logic. Only lanes in @p behav_lanes clock their
     * behavioral models — retired lanes' models stay frozen (their net
     * values keep evolving, unobserved).
     */
    void step(std::span<const LaneForce> forces = {},
              LaneMask behav_lanes = ~uint64_t{0});

    /** Invert a flop's stored value in the selected lanes only. */
    void flipFlop(StateElemId id, LaneMask lanes_bits);

    /** Value of a net in one lane. */
    bool value(NetId id, unsigned lane) const
    {
        return ((netWords[id] >> lane) & 1) != 0;
    }

    /** All 64 lanes of one net. */
    uint64_t word(NetId id) const { return netWords[id]; }

    /** Cycles executed since reset()/seed() (shared by all lanes). */
    uint64_t cycle() const { return cycleCount; }

    /**
     * Lanes whose values on @p nets differ from the per-net reference
     * bytes @p golden (0/1, indexed like @p nets): bit l of the result
     * is set iff lane l mismatches on at least one net. One pass over
     * the nets answers the convergence question for all lanes at once —
     * the engine's convergence early-exit runs on this.
     */
    LaneMask divergedLanes(std::span<const NetId> nets,
                           std::span<const uint8_t> golden) const;

    /** Lane @p lane's private clone of a behavioral model. */
    BehavioralModel &behavModel(CellId id, unsigned lane) const;

    const Netlist &netlist() const { return *nl; }

  private:
    void evalComb();

    /** Same compiled program as CycleSimulator, over words. */
    struct CombOp
    {
        CellType type;
        NetId in0;
        NetId in1;
        NetId in2;
        NetId out;
    };

    const Netlist *nl;
    unsigned laneCap;
    unsigned laneCount;
    std::vector<CombOp> combProgram;
    std::vector<uint64_t> netWords; ///< One word per net, 1 bit/lane.
    uint64_t cycleCount = 0;

    /** Per-lane private behavioral clones, keyed by cell. */
    std::unordered_map<CellId, std::vector<BehavioralModelPtr>> models;

    /** Scratch: per-state-element sampled words during step(). */
    std::vector<uint64_t> sampledWords;
    std::vector<bool> behavIn;
    std::vector<bool> behavOut;
};

} // namespace davf

#endif // DAVF_SIM_VEC_SIM_HH
