/**
 * @file
 * Tests for per-instruction root-cause attribution (src/analysis/ and
 * its SamplingConfig::attribution plumbing — docs/ANALYSIS.md):
 *
 *  - the RV32I(+M) disassembler used for attribution labels
 *    (round-tripped through the repo's own assembler, so the two can
 *    never drift on operand syntax);
 *  - the attr/attrtab journal grammar: outcome and result sections
 *    round-trip bit-exactly, percent-encoded mnemonics survive spaces
 *    and empty strings, damage is rejected, and unknown trailing
 *    tokens are left for the caller (the worker-reply rusage suffix);
 *  - the shard/query spec grammar: the trailing "attr" token
 *    round-trips, attribution-off text is byte-identical to the
 *    pre-flag grammar (the store-key stability guarantee), and junk
 *    after the token is rejected;
 *  - engine-level identity on a real IbexMini workspace: the
 *    attribution table is bit-identical across thread counts, enabling
 *    attribution does not perturb any non-attribution counter, and an
 *    interrupted --attribution campaign resumed at a different thread
 *    count reproduces the uninterrupted journal, CSV, and attribution
 *    CSV byte-for-byte (both interruption directions).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "src/analysis/disasm.hh"
#include "src/campaign/campaign.hh"
#include "src/campaign/checkpoint.hh"
#include "src/core/report.hh"
#include "src/core/shard.hh"
#include "src/core/vulnerability.hh"
#include "src/isa/assembler.hh"
#include "src/service/protocol.hh"
#include "src/service/workspace.hh"

namespace davf {
namespace {

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "davf_test_"
        + std::to_string(::getpid()) + "_" + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream file(path, std::ios::binary);
    EXPECT_TRUE(static_cast<bool>(file)) << path;
    std::ostringstream os;
    os << file.rdbuf();
    return os.str();
}

// ---------------------------------------------------------------- disasm

TEST(Disasm, RoundTripsThroughTheAssembler)
{
    // Assemble canonical text and expect the disassembler to
    // reproduce it verbatim — operand order, the mem-operand
    // "offset(base)" form, and signed branch/jump byte offsets.
    const std::vector<std::string> lines = {
        "lw x1, 8(x2)",        "addi x5, x0, 42",
        "add x3, x1, x5",      "sub x3, x3, x1",
        "sw x3, 12(x2)",       "slli x6, x5, 3",
        "srai x6, x6, 1",      "mul x7, x5, x6",
        "andi x8, x7, 255",    "xor x9, x8, x7",
    };
    std::string source;
    for (const std::string &line : lines)
        source += line + "\n";
    const std::vector<uint32_t> image = assemble(source);
    ASSERT_EQ(image.size(), lines.size());
    for (size_t i = 0; i < lines.size(); ++i)
        EXPECT_EQ(analysis::disassemble(image[i]), lines[i]) << i;
}

TEST(Disasm, BranchesAndJumpsUseSignedByteOffsets)
{
    const std::vector<uint32_t> image = assemble("top:\n"
                                                 "  addi x5, x5, -1\n"
                                                 "  beq x5, x0, top\n"
                                                 "  jal x1, top\n");
    ASSERT_EQ(image.size(), 3u);
    EXPECT_EQ(analysis::disassemble(image[0]), "addi x5, x5, -1");
    EXPECT_EQ(analysis::disassemble(image[1]), "beq x5, x0, -4");
    EXPECT_EQ(analysis::disassemble(image[2]), "jal x1, -8");
}

TEST(Disasm, UnknownWordsRenderAsData)
{
    // The table must stay total over whatever the image holds.
    EXPECT_EQ(analysis::disassemble(0xffffffffu), ".word 0xffffffff");
    EXPECT_EQ(analysis::disassemble(0u), ".word 0x00000000");
    EXPECT_EQ(analysis::disassemble(0x00000073u), "ecall");
    // M-extension division (not in the assembler's source dialect).
    EXPECT_EQ(analysis::disassemble(0x025353b3u), "divu x7, x6, x5");
}

// ---------------------------------------------- attr journal grammar

InjectionCycleOutcome
outcomeWithAttr()
{
    InjectionCycleOutcome out;
    out.cycle = 17;
    out.injections = 40;
    out.errorInjections = 9;
    out.delayAce = 3;
    out.sdc = 2;
    out.due = 1;
    out.uniqueGroupSims = 9;
    out.wireDyn = {1, 0, 1};
    out.wireAce = {1, 0, 0};
    out.attr.valid = true;
    out.attr.pc = 0x40;
    out.attr.mnemonic = "lw x1, 8(x2)";
    out.attr.events = {{0x44, "addi x5, x0, 42", "x5", 2},
                       {0x48, "sw x3, 12(x2)", "mem", 1}};
    return out;
}

TEST(AttrGrammar, OutcomeSectionRoundTripsBitExactly)
{
    const InjectionCycleOutcome out = outcomeWithAttr();
    const std::string text = serializeOutcomeFields(out);
    EXPECT_NE(text.find(" attr "), std::string::npos) << text;

    std::istringstream is(text);
    InjectionCycleOutcome back;
    ASSERT_TRUE(parseOutcomeFields(is, back)) << text;
    EXPECT_EQ(back, out);

    // Attribution off: the section is absent and the bytes match the
    // pre-flag grammar, so old journals parse and old resumes match.
    InjectionCycleOutcome plain = out;
    plain.attr = CycleAttribution{};
    const std::string plain_text = serializeOutcomeFields(plain);
    EXPECT_EQ(plain_text.find("attr"), std::string::npos);
    EXPECT_EQ(text.rfind(plain_text, 0), 0u)
        << "attr must extend the line, not reshape it";
}

TEST(AttrGrammar, MnemonicsSurvivePercentEncoding)
{
    InjectionCycleOutcome out = outcomeWithAttr();
    out.attr.mnemonic = ""; // encoded as the lone "%" sentinel
    out.attr.events = {{0, "%weird 100% text%", "x1", 1},
                       {4, ".word 0xdeadbeef", "uarch", 2}};
    const std::string text = serializeOutcomeFields(out);
    EXPECT_EQ(text.find('\n'), std::string::npos) << text;

    std::istringstream is(text);
    InjectionCycleOutcome back;
    ASSERT_TRUE(parseOutcomeFields(is, back)) << text;
    EXPECT_EQ(back, out);
}

TEST(AttrGrammar, DamagedSectionsAreRejected)
{
    const std::string text = serializeOutcomeFields(outcomeWithAttr());
    // Truncations inside the attr section must never yield a
    // *different* attribution than the intact bytes: either the parse
    // fails, or it returns the full outcome, or — when the cut makes
    // the tail an unknown token the parser leaves for its caller —
    // the attribution-free outcome (the caller's trailing-token check
    // then rejects the leftover, as the scheduler and journal do).
    InjectionCycleOutcome plain = outcomeWithAttr();
    plain.attr = CycleAttribution{};
    const size_t attr_at = text.find(" attr ");
    ASSERT_NE(attr_at, std::string::npos);
    for (size_t len = attr_at + 1; len < text.size(); ++len) {
        std::istringstream is(text.substr(0, len));
        InjectionCycleOutcome torn;
        if (parseOutcomeFields(is, torn)) {
            EXPECT_TRUE(torn == outcomeWithAttr() || torn == plain)
                << len;
        }
    }
    // A non-numeric event count is damage.
    std::string garbled = text;
    garbled.replace(garbled.find(" attr ") + 6, 0, "x");
    std::istringstream is(garbled);
    InjectionCycleOutcome out;
    EXPECT_FALSE(parseOutcomeFields(is, out));
}

TEST(AttrGrammar, UnknownTailIsLeftForTheCaller)
{
    // The process-isolation worker reply appends a rusage suffix after
    // the outcome fields; the outcome parser must leave it unread
    // (with and without an attr section) for the supervisor to parse.
    for (const bool with_attr : {false, true}) {
        InjectionCycleOutcome out = outcomeWithAttr();
        if (!with_attr)
            out.attr = CycleAttribution{};
        std::istringstream is(serializeOutcomeFields(out)
                              + " rss 1234 0.5 0.25");
        InjectionCycleOutcome back;
        ASSERT_TRUE(parseOutcomeFields(is, back)) << with_attr;
        EXPECT_EQ(back, out);
        std::string tag;
        ASSERT_TRUE(static_cast<bool>(is >> tag)) << with_attr;
        EXPECT_EQ(tag, "rss");
    }
}

// ---------------------------------------------------- spec grammar

TEST(AttrGrammar, ShardSpecAttrTokenRoundTrips)
{
    ShardSpec spec;
    spec.structure = "ALU";
    spec.delayFraction = 0.5;
    spec.cycle = 9;
    spec.sampling.maxInjectionCycles = 4;
    spec.sampling.maxWires = 60;

    const std::string off = serializeShardSpec(spec);
    EXPECT_EQ(off.find("attr"), std::string::npos);

    spec.sampling.attribution = true;
    const std::string on = serializeShardSpec(spec);
    // Append-only extension: the attribution-off text (= the store
    // key) is byte-identical to the pre-flag grammar.
    EXPECT_EQ(on, off + " attr");

    const Result<ShardSpec> back = parseShardSpec(on);
    ASSERT_TRUE(back.ok()) << back.error().what();
    EXPECT_TRUE(back.value().sampling.attribution);
    EXPECT_EQ(serializeShardSpec(back.value()), on);

    const Result<ShardSpec> plain = parseShardSpec(off);
    ASSERT_TRUE(plain.ok());
    EXPECT_FALSE(plain.value().sampling.attribution);

    EXPECT_FALSE(parseShardSpec(on + " junk").ok());
    EXPECT_FALSE(parseShardSpec(off + " junk").ok());
}

TEST(AttrGrammar, QuerySpecAttrTokenRoundTrips)
{
    service::QuerySpec query;
    query.structure = "ALU";
    query.delays = {0.5, 0.7};
    query.sampling.maxInjectionCycles = 4;

    const std::string off = service::serializeQuerySpec(query);
    EXPECT_EQ(off.find("attr"), std::string::npos);

    query.sampling.attribution = true;
    const std::string on = service::serializeQuerySpec(query);
    EXPECT_EQ(on, off + " attr");

    const auto back = service::parseQuerySpec(on);
    ASSERT_TRUE(back.ok()) << back.error().what();
    EXPECT_TRUE(back.value().sampling.attribution);
    EXPECT_EQ(service::serializeQuerySpec(back.value()), on);

    const auto plain = service::parseQuerySpec(off);
    ASSERT_TRUE(plain.ok());
    EXPECT_FALSE(plain.value().sampling.attribution);

    EXPECT_FALSE(service::parseQuerySpec(on + " junk").ok());
}

TEST(AttrGrammar, ConfigHashSeparatesAttributionCampaigns)
{
    // Attribution changes what a campaign computes, so it must fence
    // resume compatibility — but the attribution-off hash has to match
    // pre-flag journals, which is why the token is append-only.
    CampaignOptions options;
    options.benchmark = "popcount";
    options.structures = {"ALU"};
    options.delays = {0.5};
    const std::string off = campaignConfigHash(options);
    options.sampling.attribution = true;
    const std::string on = campaignConfigHash(options);
    EXPECT_NE(on, off);
    options.sampling.attribution = false;
    EXPECT_EQ(campaignConfigHash(options), off);
}

// ------------------------------------------------- engine identity

/** One shared IbexMini workspace (built once; popcount is the
 *  smallest benchmark with a non-trivial instruction mix). */
service::Workspace &
workspace()
{
    static service::Workspace *ws = [] {
        service::WorkspaceSpec spec;
        spec.benchmark = "popcount";
        return new service::Workspace(spec);
    }();
    return *ws;
}

SamplingConfig
smallSampling()
{
    SamplingConfig config;
    config.maxInjectionCycles = 3;
    config.maxWires = 40;
    config.maxFlops = 16;
    config.seed = 1;
    config.attribution = true;
    return config;
}

/** Bit-exact comparable text form of a full DelayAVF result (the
 *  journal cell grammar serializes doubles as hexfloats). */
std::string
resultText(const DelayAvfResult &result)
{
    Checkpoint checkpoint;
    checkpoint.configHash = "test";
    CheckpointCell cell;
    cell.key = {"davf", "popcount", "ALU", canonicalDelay(0.5)};
    cell.davf = result;
    checkpoint.cells.push_back(cell);
    return serializeCheckpoint(checkpoint);
}

TEST(AttrEngine, TableIsBitIdenticalAcrossThreadCounts)
{
    service::Workspace &ws = workspace();
    const Structure &alu = ws.structure("ALU");

    SamplingConfig config = smallSampling();
    config.threads = 1;
    const DelayAvfResult one = ws.engine().delayAvf(alu, 0.5, config);
    config.threads = 4;
    const DelayAvfResult four = ws.engine().delayAvf(alu, 0.5, config);

    ASSERT_TRUE(one.attrValid);
    ASSERT_FALSE(one.attribution.empty());
    EXPECT_EQ(resultText(one), resultText(four));
    EXPECT_EQ(one.attribution, four.attribution);

    // The same table flows into the CSV and JSON report surfaces.
    EXPECT_EQ(attributionCsvRows("popcount", "ALU", 0.5, one),
              attributionCsvRows("popcount", "ALU", 0.5, four));
    EXPECT_NE(delayAvfJson("popcount", "ALU", 0.5, one)
                  .find("\"attribution\":["),
              std::string::npos);
}

TEST(AttrEngine, AttributionDoesNotPerturbTheCounters)
{
    // Divergence walks ride outside the counted simulations, so every
    // non-attribution field must match an attribution-off run exactly
    // (the per-structure byte-identity acceptance bar).
    service::Workspace &ws = workspace();
    const Structure &alu = ws.structure("ALU");

    SamplingConfig config = smallSampling();
    config.threads = 2;
    DelayAvfResult with = ws.engine().delayAvf(alu, 0.5, config);
    config.attribution = false;
    const DelayAvfResult without = ws.engine().delayAvf(alu, 0.5, config);

    ASSERT_TRUE(with.attrValid);
    EXPECT_FALSE(without.attrValid);
    with.attrValid = false;
    with.attribution.clear();
    EXPECT_EQ(resultText(with), resultText(without));
}

/** Run one small --attribution campaign; returns its summary. */
CampaignSummary
runAttrCampaign(unsigned threads, const std::string &ckpt,
                const std::string &csv, bool resume,
                const std::atomic<bool> *stop = nullptr,
                std::function<void()> on_saved = nullptr)
{
    service::Workspace &ws = workspace();
    CampaignOptions opts;
    opts.benchmark = "popcount";
    opts.structures = {"ALU"};
    opts.delays = {0.5, 0.7};
    opts.runSavf = false;
    opts.sampling = smallSampling();
    opts.sampling.threads = threads;
    opts.checkpointPath = ckpt;
    opts.csvPath = csv;
    opts.resume = resume;
    opts.stopFlag = stop;
    opts.onCheckpointSaved = std::move(on_saved);
    Campaign campaign(ws.engine(), ws.structures(), opts);
    return campaign.run();
}

TEST(AttrEngine, InterruptedResumeReproducesTablesByteForByte)
{
    const std::string ref_ckpt = tempPath("attr_ref.ckpt");
    const std::string ref_csv = tempPath("attr_ref.csv");

    // Reference: uninterrupted, 1 thread.
    {
        const CampaignSummary summary =
            runAttrCampaign(1, ref_ckpt, ref_csv, false);
        EXPECT_FALSE(summary.interrupted);
        EXPECT_EQ(summary.cellsFailed, 0u);
    }
    const std::string ref_journal = slurp(ref_ckpt);
    const std::string ref_attr_csv = slurp(ref_csv + ".attr");
    EXPECT_NE(ref_journal.find(" attrtab "), std::string::npos);
    EXPECT_NE(ref_attr_csv.find("popcount"), std::string::npos);

    // Both interruption directions: cut at one thread count, resume
    // at another; journal, CSV, and attribution CSV must all equal
    // the uninterrupted reference byte-for-byte.
    struct Direction { unsigned cutThreads, resumeThreads; };
    for (const Direction dir : {Direction{1, 4}, Direction{4, 1}}) {
        const std::string tag = std::to_string(dir.cutThreads) + "to"
            + std::to_string(dir.resumeThreads);
        const std::string cut_ckpt = tempPath("attr_" + tag + ".ckpt");
        const std::string cut_csv = tempPath("attr_" + tag + ".csv");

        std::atomic<bool> stop{false};
        uint64_t saves = 0;
        const CampaignSummary cut = runAttrCampaign(
            dir.cutThreads, cut_ckpt, cut_csv, false, &stop, [&] {
                if (++saves == 2)
                    stop.store(true);
            });
        EXPECT_TRUE(cut.interrupted) << tag;
        ASSERT_GE(saves, 2u) << tag;

        const CampaignSummary resumed = runAttrCampaign(
            dir.resumeThreads, cut_ckpt, cut_csv, true);
        EXPECT_FALSE(resumed.interrupted) << tag;
        EXPECT_EQ(slurp(cut_ckpt), ref_journal) << tag;
        EXPECT_EQ(slurp(cut_csv), slurp(ref_csv)) << tag;
        EXPECT_EQ(slurp(cut_csv + ".attr"), ref_attr_csv) << tag;

        for (const std::string &path :
             {cut_ckpt, cut_csv, cut_csv + ".attr"})
            std::remove(path.c_str());
    }

    // Resuming the complete journal recomputes nothing and rewrites
    // the same bytes.
    {
        const CampaignSummary summary =
            runAttrCampaign(2, ref_ckpt, ref_csv, true);
        EXPECT_EQ(summary.cellsComputed, 0u);
        EXPECT_EQ(summary.cellsFromCheckpoint, 2u);
        EXPECT_EQ(slurp(ref_ckpt), ref_journal);
        EXPECT_EQ(slurp(ref_csv + ".attr"), ref_attr_csv);
    }

    for (const std::string &path :
         {ref_ckpt, ref_csv, ref_csv + ".attr"})
        std::remove(path.c_str());
}

TEST(AttrEngine, JournalRoundTripsAttributionTables)
{
    // A full cell result (attrtab section) survives the journal parse
    // bit-exactly — resume adopts tables instead of recomputing them.
    service::Workspace &ws = workspace();
    const DelayAvfResult result =
        ws.engine().delayAvf(ws.structure("ALU"), 0.5, smallSampling());
    ASSERT_TRUE(result.attrValid);

    const std::string text = resultText(result);
    EXPECT_NE(text.find(" attrtab "), std::string::npos);
    const Result<Checkpoint> back = parseCheckpoint(text);
    ASSERT_TRUE(back.ok()) << back.error().what();
    ASSERT_EQ(back.value().cells.size(), 1u);
    const DelayAvfResult &reparsed = back.value().cells[0].davf;
    EXPECT_TRUE(reparsed.attrValid);
    EXPECT_EQ(reparsed.attribution, result.attribution);
    EXPECT_EQ(resultText(reparsed), text);
}

} // namespace
} // namespace davf
