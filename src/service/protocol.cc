#include "protocol.hh"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "util/logging.hh"

namespace davf::service {

namespace {

std::string
hexDouble(double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%a", value);
    return buffer;
}

bool
readDouble(std::istream &is, double &out)
{
    std::string text;
    if (!(is >> text))
        return false;
    const char *begin = text.c_str();
    char *end = nullptr;
    out = std::strtod(begin, &end);
    return end == begin + text.size() && !text.empty();
}

/** Fill a sockaddr_un; socket paths are length-limited by the ABI. */
sockaddr_un
unixAddress(const std::string &path)
{
    sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof addr.sun_path) {
        davf_throw(ErrorKind::BadArgument, "socket path '", path,
                   "' is empty or longer than ",
                   sizeof addr.sun_path - 1, " bytes");
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return addr;
}

} // namespace

std::string
serializeQuerySpec(const QuerySpec &query)
{
    std::ostringstream os;
    os << serializeWorkspaceSpec(query.workspace) << ' '
       << query.structure << ' ' << query.delays.size();
    for (double d : query.delays)
        os << ' ' << hexDouble(d);
    const SamplingConfig &sampling = query.sampling;
    os << ' ' << (query.runSavf ? 1 : 0) << ' '
       << hexDouble(sampling.cycleFraction) << ' '
       << sampling.maxInjectionCycles << ' ' << sampling.maxWires << ' '
       << sampling.maxFlops << ' ' << sampling.seed << ' '
       << sampling.watchdogSlack << ' '
       << hexDouble(sampling.injectionTimeoutMs) << ' '
       << hexDouble(sampling.maxFailureRate);
    // Written only when set so attribution-off frames stay byte-equal
    // to pre-attribution clients (same rule as serializeShardSpec).
    if (sampling.attribution)
        os << " attr";
    return os.str();
}

Result<QuerySpec>
parseQuerySpec(const std::string &text)
{
    using R = Result<QuerySpec>;
    std::istringstream is(text);
    QuerySpec query;

    std::string benchmark;
    int ecc = 0;
    int sta = 0;
    if (!(is >> benchmark >> ecc >> sta) || (ecc != 0 && ecc != 1)
        || (sta != 0 && sta != 1)) {
        return R::Err(ErrorKind::BadInput,
                      "query spec: bad workspace fields: " + text);
    }
    query.workspace.benchmark = std::move(benchmark);
    query.workspace.ecc = ecc == 1;
    query.workspace.staPeriod = sta == 1;

    size_t num_delays = 0;
    if (!(is >> query.structure >> num_delays)
        || num_delays > 1u << 16) {
        return R::Err(ErrorKind::BadInput,
                      "query spec: bad structure/delay count: " + text);
    }
    query.delays.resize(num_delays);
    for (double &d : query.delays) {
        if (!readDouble(is, d)) {
            return R::Err(ErrorKind::BadInput,
                          "query spec: bad delay list: " + text);
        }
    }

    int savf = 0;
    SamplingConfig &sampling = query.sampling;
    if (!(is >> savf) || (savf != 0 && savf != 1)
        || !readDouble(is, sampling.cycleFraction)
        || !(is >> sampling.maxInjectionCycles >> sampling.maxWires
                >> sampling.maxFlops >> sampling.seed
                >> sampling.watchdogSlack)
        || !readDouble(is, sampling.injectionTimeoutMs)
        || !readDouble(is, sampling.maxFailureRate)) {
        return R::Err(ErrorKind::BadInput,
                      "query spec: bad sampling fields: " + text);
    }
    query.runSavf = savf == 1;

    std::string trailing;
    if (is >> trailing && trailing == "attr") {
        sampling.attribution = true;
        trailing.clear();
        is >> trailing;
    }
    if (!trailing.empty()) {
        return R::Err(ErrorKind::BadInput,
                      "query spec: trailing tokens: " + text);
    }
    return R::Ok(std::move(query));
}

std::string
makeQueryFrame(const QuerySpec &query)
{
    return "query " + serializeQuerySpec(query);
}

Result<ClientFrame>
parseClientFrame(const std::string &payload)
{
    using R = Result<ClientFrame>;
    ClientFrame frame;
    if (payload == "cancel") {
        frame.verb = ClientFrame::Verb::Cancel;
        return R::Ok(std::move(frame));
    }
    if (payload == "stats") {
        frame.verb = ClientFrame::Verb::Stats;
        return R::Ok(std::move(frame));
    }
    if (payload == "quit") {
        frame.verb = ClientFrame::Verb::Quit;
        return R::Ok(std::move(frame));
    }
    if (payload.rfind("query ", 0) == 0) {
        Result<QuerySpec> query = parseQuerySpec(payload.substr(6));
        if (!query)
            return R::Err(query.error());
        frame.verb = ClientFrame::Verb::Query;
        frame.query = std::move(query.value());
        return R::Ok(std::move(frame));
    }
    return R::Err(ErrorKind::BadInput, "unknown client frame '"
                                           + payload.substr(0, 60)
                                           + "'");
}

std::string
serializeServerReply(const ServerReply &reply)
{
    if (reply.ok) {
        std::string text = "ok " + reply.tag;
        if (!reply.body.empty())
            text += ' ' + reply.body;
        return text;
    }
    return "err " + reply.errorKind + ' ' + reply.message;
}

Result<ServerReply>
parseServerReply(const std::string &payload)
{
    using R = Result<ServerReply>;
    std::istringstream is(payload);
    std::string status;
    ServerReply reply;
    if (!(is >> status))
        return R::Err(ErrorKind::BadInput, "empty server reply");
    if (status == "ok") {
        if (!(is >> reply.tag) || (reply.tag != "report"
                                   && reply.tag != "stats"
                                   && reply.tag != "bye")) {
            return R::Err(ErrorKind::BadInput,
                          "server reply: bad tag: "
                              + payload.substr(0, 60));
        }
        reply.ok = true;
        std::getline(is, reply.body);
        if (!reply.body.empty() && reply.body.front() == ' ')
            reply.body.erase(0, 1);
        return R::Ok(std::move(reply));
    }
    if (status == "err") {
        if (!(is >> reply.errorKind)) {
            return R::Err(ErrorKind::BadInput,
                          "server reply: missing error kind");
        }
        std::getline(is, reply.message);
        if (!reply.message.empty() && reply.message.front() == ' ')
            reply.message.erase(0, 1);
        return R::Ok(std::move(reply));
    }
    return R::Err(ErrorKind::BadInput, "server reply: bad status '"
                                           + status + "'");
}

int
listenUnix(const std::string &path)
{
    const sockaddr_un addr = unixAddress(path);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        davf_throw(ErrorKind::Io, "socket(AF_UNIX): ",
                   std::strerror(errno));
    }
    // A stale socket file from a previous server blocks bind(2);
    // replacing it is the conventional unix-socket server dance.
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof addr)
        != 0) {
        const int saved = errno;
        ::close(fd);
        davf_throw(ErrorKind::Io, "bind('", path, "'): ",
                   std::strerror(saved));
    }
    if (::listen(fd, 64) != 0) {
        const int saved = errno;
        ::close(fd);
        davf_throw(ErrorKind::Io, "listen('", path, "'): ",
                   std::strerror(saved));
    }
    return fd;
}

int
connectUnix(const std::string &path)
{
    const sockaddr_un addr = unixAddress(path);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        davf_throw(ErrorKind::Io, "socket(AF_UNIX): ",
                   std::strerror(errno));
    }
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof addr)
        != 0) {
        const int saved = errno;
        ::close(fd);
        davf_throw(ErrorKind::Io, "connect('", path, "'): ",
                   std::strerror(saved));
    }
    return fd;
}

} // namespace davf::service
