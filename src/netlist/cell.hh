/**
 * @file
 * Cell types and the technology library.
 *
 * The paper's case study synthesizes Ibex against the NanGate 45 nm open
 * cell library and derives per-wire delays from the driving cell's strength
 * and the driven capacitive load, pre-layout (no interconnect RC),
 * data-independent (§VI-A, "Modeling Delays"). We reproduce that model: a
 * small library of primitive cells, each with an intrinsic propagation
 * delay and a load-dependent slope; the delay of a wire is
 *
 *     wireDelay = wireBase + slope(driver) * fanout(net)
 *
 * and the pin-to-pin delay of a cell is its intrinsic delay. All times are
 * in picoseconds. The magnitudes are modeled on NanGate 45 nm typical
 * corner values; only relative magnitudes matter for DelayAVF shapes.
 */

#ifndef DAVF_NETLIST_CELL_HH
#define DAVF_NETLIST_CELL_HH

#include <cstdint>
#include <string_view>

namespace davf {

/** Primitive cell kinds understood by the simulators and STA. */
enum class CellType : uint8_t {
    Input,   ///< Primary input; 0 inputs, 1 output.
    Output,  ///< Primary output marker; 1 input, 0 outputs.
    Const0,  ///< Constant 0 driver.
    Const1,  ///< Constant 1 driver.
    Buf,     ///< Buffer.
    Inv,     ///< Inverter.
    And2,
    Or2,
    Nand2,
    Nor2,
    Xor2,
    Xnor2,
    Mux2,    ///< Inputs {A, B, S}; output = S ? B : A.
    Dff,     ///< D flip-flop; input {D}, output {Q}.
    Dffe,    ///< D flip-flop with enable; inputs {D, EN}; Q' = EN ? D : Q.
    Behav,   ///< Clocked behavioral block (e.g. a memory); see BehavioralModel.
};

/** Number of input pins for a (non-behavioral) cell type. */
constexpr unsigned
cellNumInputs(CellType type)
{
    switch (type) {
      case CellType::Input:
      case CellType::Const0:
      case CellType::Const1:
        return 0;
      case CellType::Output:
      case CellType::Buf:
      case CellType::Inv:
      case CellType::Dff:
        return 1;
      case CellType::And2:
      case CellType::Or2:
      case CellType::Nand2:
      case CellType::Nor2:
      case CellType::Xor2:
      case CellType::Xnor2:
      case CellType::Dffe:
        return 2;
      case CellType::Mux2:
        return 3;
      case CellType::Behav:
        return 0; // Variable; checked separately.
    }
    return 0;
}

/** True for cells whose output is produced at the clock edge. */
constexpr bool
cellIsSequential(CellType type)
{
    return type == CellType::Dff || type == CellType::Dffe
        || type == CellType::Behav;
}

/** True for cells that drive a value during the cycle from their inputs. */
constexpr bool
cellIsCombinational(CellType type)
{
    switch (type) {
      case CellType::Buf:
      case CellType::Inv:
      case CellType::And2:
      case CellType::Or2:
      case CellType::Nand2:
      case CellType::Nor2:
      case CellType::Xor2:
      case CellType::Xnor2:
      case CellType::Mux2:
        return true;
      default:
        return false;
    }
}

/** Human-readable cell type name. */
std::string_view cellTypeName(CellType type);

/** Evaluate a combinational cell given its input values. */
inline bool
evalCell(CellType type, bool a, bool b = false, bool s = false)
{
    switch (type) {
      case CellType::Buf:   return a;
      case CellType::Inv:   return !a;
      case CellType::And2:  return a && b;
      case CellType::Or2:   return a || b;
      case CellType::Nand2: return !(a && b);
      case CellType::Nor2:  return !(a || b);
      case CellType::Xor2:  return a != b;
      case CellType::Xnor2: return a == b;
      case CellType::Mux2:  return s ? b : a;
      default:              return false;
    }
}

/**
 * Timing parameters of the technology library, NanGate-45-like, in ps.
 *
 * @see CellLibrary::defaultLibrary() for the values used by the case study.
 */
struct CellTiming
{
    double intrinsic = 0.0;  ///< Pin-to-pin propagation delay.
    double loadSlope = 0.0;  ///< Extra wire delay per unit of fanout load.
};

/** The technology library: timing data per cell type. */
class CellLibrary
{
  public:
    /** Timing for @p type. */
    const CellTiming &timing(CellType type) const
    {
        return timings[static_cast<size_t>(type)];
    }

    /** Mutable timing for @p type (for custom libraries / corners). */
    CellTiming &timing(CellType type)
    {
        return timings[static_cast<size_t>(type)];
    }

    /** Fixed per-wire base delay added to every wire. */
    double wireBase = 2.0;

    /** Clock-to-Q delay of sequential outputs (cycle-start availability). */
    double clkToQ = 24.0;

    /** The NanGate-45-like default library used throughout the case study. */
    static CellLibrary defaultLibrary();

    /**
     * A copy with every gate intrinsic scaled by @p gate_factor and
     * every load-dependent term (slopes, wire base) scaled by
     * @p wire_factor. The paper notes the model "can be repeatedly
     * applied to study fault behaviours across different delay
     * behaviours" such as process corners (§IV-A); uniform scaling
     * leaves DelayAVF shapes unchanged, while skewing gate vs wire
     * delay (e.g. a post-layout, interconnect-dominated corner)
     * re-ranks paths and therefore statically reachable sets.
     */
    CellLibrary scaled(double gate_factor, double wire_factor) const;

    /** Slow process corner: everything 1.3x. */
    static CellLibrary slowCorner();

    /** Interconnect-dominated (post-layout-like) corner: wire terms
     *  2.5x, gates unchanged. */
    static CellLibrary wireDominatedCorner();

  private:
    CellTiming timings[16] = {};
};

} // namespace davf

#endif // DAVF_NETLIST_CELL_HH
