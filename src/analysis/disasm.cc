#include "disasm.hh"

#include <cstdarg>
#include <cstdio>

namespace davf::analysis {

namespace {

int32_t
signExtend(uint32_t value, unsigned bits)
{
    const uint32_t sign = 1u << (bits - 1);
    return static_cast<int32_t>((value ^ sign) - sign);
}

std::string
format(const char *fmt, ...)
{
    char buffer[64];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buffer, sizeof buffer, fmt, args);
    va_end(args);
    return buffer;
}

std::string
regRegReg(const char *name, unsigned rd, unsigned rs1, unsigned rs2)
{
    return format("%s x%u, x%u, x%u", name, rd, rs1, rs2);
}

std::string
regRegImm(const char *name, unsigned rd, unsigned rs1, int32_t imm)
{
    return format("%s x%u, x%u, %d", name, rd, rs1, imm);
}

std::string
memForm(const char *name, unsigned reg, int32_t offset, unsigned base)
{
    return format("%s x%u, %d(x%u)", name, reg, offset, base);
}

std::string
unknown(uint32_t word)
{
    return format(".word 0x%08x", word);
}

} // namespace

std::string
disassemble(uint32_t word)
{
    const uint32_t opcode = word & 0x7f;
    const unsigned rd = (word >> 7) & 0x1f;
    const unsigned funct3 = (word >> 12) & 0x7;
    const unsigned rs1 = (word >> 15) & 0x1f;
    const unsigned rs2 = (word >> 20) & 0x1f;
    const unsigned funct7 = word >> 25;
    const int32_t imm_i = signExtend(word >> 20, 12);

    switch (opcode) {
      case 0x37:
        return format("lui x%u, 0x%x", rd, word >> 12);
      case 0x17:
        return format("auipc x%u, 0x%x", rd, word >> 12);
      case 0x6f: {
        const uint32_t raw = ((word >> 31) << 20)
            | (((word >> 12) & 0xff) << 12) | (((word >> 20) & 1) << 11)
            | (((word >> 21) & 0x3ff) << 1);
        return format("jal x%u, %d", rd, signExtend(raw, 21));
      }
      case 0x67:
        if (funct3 != 0)
            return unknown(word);
        return memForm("jalr", rd, imm_i, rs1);
      case 0x63: {
        static const char *const names[8] = {
            "beq", "bne", nullptr, nullptr, "blt", "bge", "bltu", "bgeu"};
        if (!names[funct3])
            return unknown(word);
        const uint32_t raw = ((word >> 31) << 12)
            | (((word >> 7) & 1) << 11) | (((word >> 25) & 0x3f) << 5)
            | (((word >> 8) & 0xf) << 1);
        return format("%s x%u, x%u, %d", names[funct3], rs1, rs2,
                      signExtend(raw, 13));
      }
      case 0x03: {
        static const char *const names[8] = {
            "lb", "lh", "lw", nullptr, "lbu", "lhu", nullptr, nullptr};
        if (!names[funct3])
            return unknown(word);
        return memForm(names[funct3], rd, imm_i, rs1);
      }
      case 0x23: {
        static const char *const names[8] = {
            "sb", "sh", "sw", nullptr, nullptr, nullptr, nullptr,
            nullptr};
        if (!names[funct3])
            return unknown(word);
        const int32_t imm_s =
            signExtend((funct7 << 5) | rd, 12);
        return memForm(names[funct3], rs2, imm_s, rs1);
      }
      case 0x13:
        switch (funct3) {
          case 0: return regRegImm("addi", rd, rs1, imm_i);
          case 2: return regRegImm("slti", rd, rs1, imm_i);
          case 3: return regRegImm("sltiu", rd, rs1, imm_i);
          case 4: return regRegImm("xori", rd, rs1, imm_i);
          case 6: return regRegImm("ori", rd, rs1, imm_i);
          case 7: return regRegImm("andi", rd, rs1, imm_i);
          case 1:
            if (funct7 != 0)
                return unknown(word);
            return regRegImm("slli", rd, rs1, static_cast<int32_t>(rs2));
          case 5:
            if (funct7 == 0x00)
                return regRegImm("srli", rd, rs1,
                                 static_cast<int32_t>(rs2));
            if (funct7 == 0x20)
                return regRegImm("srai", rd, rs1,
                                 static_cast<int32_t>(rs2));
            return unknown(word);
          default:
            return unknown(word);
        }
      case 0x33:
        if (funct7 == 0x01) {
            static const char *const names[8] = {
                "mul", "mulh", "mulhsu", "mulhu",
                "div", "divu", "rem", "remu"};
            return regRegReg(names[funct3], rd, rs1, rs2);
        }
        if (funct7 == 0x00) {
            static const char *const names[8] = {
                "add", "sll", "slt", "sltu", "xor", "srl", "or", "and"};
            return regRegReg(names[funct3], rd, rs1, rs2);
        }
        if (funct7 == 0x20) {
            if (funct3 == 0)
                return regRegReg("sub", rd, rs1, rs2);
            if (funct3 == 5)
                return regRegReg("sra", rd, rs1, rs2);
        }
        return unknown(word);
      case 0x0f:
        return "fence";
      case 0x73:
        if (word == 0x00000073)
            return "ecall";
        if (word == 0x00100073)
            return "ebreak";
        return unknown(word);
      default:
        return unknown(word);
    }
}

} // namespace davf::analysis
