/**
 * @file
 * Figure 11 reproduction: the SEC-ECC escape case study. A particle
 * strike in an ECC-protected register file cell is always corrected
 * (sAVF -> 0), but a small delay fault on a shared wire — e.g. a
 * wordline/decoder/select net — can corrupt *multiple* codeword bits at
 * once, or re-latch stale data wholesale, which single-error correction
 * cannot catch (and may actively mis-correct).
 *
 * This harness demonstrates the effect on the real core: on the
 * ECC-regfile build running bubblesort it measures (a) the register
 * file's sAVF (expected ~0: every injected strike lands in a codeword
 * and is corrected on read), (b) its DelayAVF at d = 90% (expected
 * nonzero), and (c) prints a concrete escaping injection: the faulted
 * wire, the multi-bit dynamically reachable set, and the failure class.
 */

#include <cstdio>

#include "bench/common.hh"

using namespace davf;
using namespace davf::bench;

int
main()
{
    std::printf("Figure 11 case study: SEC ECC vs small delay faults\n"
                "(ECC-regfile build, bubblesort)\n\n");

    BenchLab lab;
    BenchContext &ctx = lab.context("bubblesort", true);
    const Structure &regfile = ctx.structure("Regfile");
    const SamplingConfig config = BenchLab::sampling();

    // (a) Particle strikes: SEC corrects every single-bit storage error.
    const SavfResult savf = ctx.engine->savf(regfile, config);
    std::printf("(a) particle strikes into ECC regfile flops:\n");
    std::printf("    injections %llu, ACE %llu  ->  sAVF = %.4f "
                "(paper: reduced to zero)\n\n",
                static_cast<unsigned long long>(savf.injections),
                static_cast<unsigned long long>(savf.aceInjections),
                savf.savf);

    // (b) Small delay faults on the same structure's wires.
    const DelayAvfResult delay =
        ctx.engine->delayAvf(regfile, 0.9, config);
    std::printf("(b) SDFs (d = 90%%) on ECC regfile wires:\n");
    std::printf("    injections %llu, with errors %llu (multi-bit "
                "%llu), DelayACE %llu\n",
                static_cast<unsigned long long>(delay.injections),
                static_cast<unsigned long long>(delay.errorInjections),
                static_cast<unsigned long long>(
                    delay.multiBitInjections),
                static_cast<unsigned long long>(
                    delay.delayAceInjections));
    std::printf("    DelayAVF = %.5f, ACE compounding in %llu sets "
                "(paper: ECC compounds heavily)\n\n",
                delay.delayAvf,
                static_cast<unsigned long long>(delay.aceCompounding));

    // (c) A concrete escaping injection.
    std::printf("(c) hunting one concrete escape...\n");
    const double d = 0.9 * ctx.engine->clockPeriod();
    bool found = false;
    for (uint64_t cycle = 1;
         cycle < ctx.engine->goldenCycles() && !found; cycle += 97) {
        for (size_t i = 0; i < regfile.wires.size() && !found; i += 3) {
            const WireId wire = regfile.wires[i];
            const auto errors =
                ctx.engine->dynamicErrors(wire, cycle, d);
            if (errors.size() < 2)
                continue;
            const FailureKind group =
                ctx.engine->groupVerdict(errors, cycle);
            if (group == FailureKind::None)
                continue;
            // Check that no single error is ACE (pure compounding).
            bool any_single = false;
            for (const auto &error : errors) {
                const CycleSimulator::Force single[] = {error};
                if (ctx.engine->groupVerdict(single, cycle)
                    != FailureKind::None) {
                    any_single = true;
                    break;
                }
            }
            std::printf("    wire '%s', cycle %llu:\n",
                        ctx.soc->netlist().wireName(wire).c_str(),
                        static_cast<unsigned long long>(cycle));
            std::printf("      %zu simultaneous state element errors ->"
                        " %s\n",
                        errors.size(),
                        group == FailureKind::Sdc
                            ? "silent data corruption"
                            : "detected unrecoverable error (hang)");
            std::printf("      individually ACE? %s%s\n",
                        any_single ? "yes" : "no",
                        any_single ? "" : "  (pure ACE compounding: "
                                          "invisible to ORACE)");
            for (const auto &[elem, value] : errors) {
                std::printf("        %s <- %d\n",
                            ctx.soc->netlist()
                                .stateElemName(elem)
                                .c_str(),
                            value ? 1 : 0);
            }
            found = true;
        }
    }
    if (!found)
        std::printf("    (no multi-bit escape in the scanned sample; "
                    "increase DAVF_BENCH_WIRES)\n");
    return 0;
}
