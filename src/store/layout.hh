/**
 * @file
 * On-disk layout of the persistent extendible-hash result index
 * (`src/store/`): byte-exact encode/decode helpers for the three
 * artifacts that make up an indexed store directory, plus the shared
 * record-text grammar the legacy per-file tier already speaks.
 *
 * An indexed store directory contains:
 *
 *  - `segments.davf` — the append-only **segment data file**, the
 *    single source of truth. Every record is wrapped in a 32-byte
 *    binary frame (magic, record size, key hash, body checksum, and a
 *    header checksum over the first 24 bytes) and padded to a 16-byte
 *    boundary so a scan can resynchronise after damage. The framed
 *    payload is the *unchanged* v2 record text
 *    ("davf-store v2\nkey ...\npayload ...\nsum ...\nend\n"), so a
 *    record read out of a segment is byte-identical to the legacy
 *    per-file tier and to a cold recompute.
 *
 *  - `index.davf` — the **extendible-hash index**: one 4 KiB header
 *    page followed by 4 KiB bucket pages. Each bucket page carries its
 *    own prefix/local-depth/checksum, so the directory is fully
 *    derivable from the bucket pages alone; the header only persists
 *    the checkpoint watermark (how many data bytes the bucket pages
 *    are guaranteed to cover) and the clean flag. The index is an
 *    acceleration structure: any damage degrades to a rebuild from the
 *    data file, never to a wrong answer.
 *
 *  - `split.journal` — present only while a bucket split is in flight
 *    (written via util/atomic_file before the split mutates pages,
 *    removed after both pages are durable). Its existence at open time
 *    classifies a **torn split**.
 *
 * All integers are little-endian. All checksums are 64-bit FNV-1a,
 * the same function the record text's `sum` line uses.
 */

#ifndef DAVF_STORE_LAYOUT_HH
#define DAVF_STORE_LAYOUT_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "util/error.hh"

namespace davf::store {

/// @name File names inside an indexed store directory
/// @{
extern const char *const kIndexFileName;    ///< "index.davf"
extern const char *const kDataFileName;     ///< "segments.davf"
extern const char *const kSplitJournalName; ///< "split.journal"
extern const char *const kLockFileName;     ///< "index.lock"
/// @}

constexpr uint32_t kLayoutVersion = 1;
constexpr uint32_t kPageSize = 4096;

/** 64-bit FNV-1a over @p bytes (layout checksums + record sums). */
uint64_t fnv1a64(std::string_view bytes);

/// FNV-1a offset basis: the running-hash seed for fnv1a64Extend.
constexpr uint64_t kFnv1a64Seed = 0xcbf29ce484222325ull;

/**
 * Fold @p bytes into a running FNV-1a @p hash (seeded with
 * kFnv1a64Seed), so a hash over a concatenation can be computed
 * without materializing it: fnv1a64(a+b) ==
 * fnv1a64Extend(fnv1a64Extend(kFnv1a64Seed, a), b).
 */
uint64_t fnv1a64Extend(uint64_t hash, std::string_view bytes);

/** Lowercase hex of fnv1a64 — the record text `sum` line format. */
std::string fnv1a64Hex(std::string_view bytes);

/** Top 16 bits of a key hash: the bucket-slot fingerprint. */
constexpr uint16_t
fingerprint(uint64_t hash)
{
    return static_cast<uint16_t>(hash >> 48);
}

/**
 * @name Record text grammar (shared with the legacy tier)
 * The exact text form of one record. ResultStore::serializeRecord /
 * parseRecord delegate here so both tiers stay byte-identical by
 * construction. parseRecordText rejects every damage class: bad magic,
 * unknown version, missing fields, checksum mismatch (garble), missing
 * end sentinel (torn), trailing garbage.
 *
 * Two grammar revisions coexist:
 *  - **v2** — the original strict four-field form; every record
 *    without attribution data is still emitted as byte-identical v2.
 *  - **v3** — the same key/payload/sum/end shape (payloads may carry
 *    an attribution section), plus forward compatibility: a v3 parser
 *    *skips* unknown extension lines between `payload` and `sum`
 *    instead of rejecting the record, so grammar growth degrades old
 *    binaries to a cache miss rather than a corrupt-record quarantine.
 * A record whose header names a version beyond kRecordTextVersionMax
 * is classified by recordTextFutureVersion(): the store treats it as a
 * miss and leaves the bytes in place for the newer binary that wrote
 * them.
 */
/// @{
constexpr uint32_t kRecordTextVersion = 2;    ///< Canonical plain form.
constexpr uint32_t kRecordTextVersionMax = 3; ///< Highest we parse.

std::string serializeRecordText(const std::string &key,
                                const std::string &payload,
                                uint32_t version = kRecordTextVersion);
Result<std::pair<std::string, std::string>>
parseRecordText(const std::string &text);

/** Does @p text carry a well-formed record header naming a version
 * newer than this binary understands? Such records are misses, never
 * damage: they must not be unlinked, quarantined, or index-dropped. */
bool recordTextFutureVersion(std::string_view text);

/**
 * Fast strict splitter for the *canonical* serialized form (the only
 * form ever appended to a segment): on success points @p key and
 * @p payload into @p record and returns true. Any deviation from the
 * exact serializeRecordText() shape — including a wrong sum — returns
 * false. The index hot path uses this instead of the line-lenient
 * parseRecordText().
 */
bool splitCanonicalRecord(std::string_view record,
                          std::string_view &key,
                          std::string_view &payload);

/** Canonical legacy file name ("r-<hash>.rec") a key's record lives
 * under in a per-file store directory. */
std::string legacyRecordFileName(const std::string &key);
/// @}

/** Index header page (page 0 of index.davf). */
struct IndexHeader
{
    uint32_t version = kLayoutVersion;
    uint32_t pageSize = kPageSize;
    uint32_t slotsPerBucket = 0; ///< Must equal kSlotsPerBucket.
    uint32_t globalDepth = 0;    ///< Directory is 2^globalDepth entries.
    uint64_t bucketPages = 0;    ///< Bucket pages following the header.
    uint64_t keyCount = 0;       ///< Live slots at last checkpoint.
    uint64_t dataCommitted = 0;  ///< Segment bytes covered by buckets.
    bool clean = false;          ///< Checkpointed; no mutations since.

    bool operator==(const IndexHeader &) const = default;
};

/** Serialize @p header into exactly one kPageSize page. */
std::string serializeIndexHeader(const IndexHeader &header);

/** Parse a header page; Err{BadInput} on any damage. */
Result<IndexHeader> parseIndexHeader(std::string_view page);

/** One bucket slot: a key hash and where its record frame lives. */
struct BucketSlot
{
    uint64_t hash = 0;   ///< fnv1a64 of the store key.
    uint64_t offset = 0; ///< Frame offset in segments.davf.
    uint32_t size = 0;   ///< Record text size (frame body bytes).
    uint32_t reserved = 0;

    bool operator==(const BucketSlot &) const = default;
};

/** Slots that fit one 4 KiB bucket page after its 24-byte header. */
constexpr uint32_t kSlotsPerBucket =
    (kPageSize - 24) / static_cast<uint32_t>(sizeof(BucketSlot));

/** The persistent image of one bucket (page 1 + id of index.davf). */
struct BucketImage
{
    uint64_t prefix = 0;     ///< Low localDepth bits every hash shares.
    uint32_t localDepth = 0;
    uint32_t count = 0;      ///< Live slots ([0, count) are valid).
    BucketSlot slots[kSlotsPerBucket] = {};
};

/** Serialize @p bucket into exactly one checksummed kPageSize page. */
std::string serializeBucketPage(const BucketImage &bucket);

/** Parse a bucket page; Err{BadInput} on checksum/shape damage. */
Result<BucketImage> parseBucketPage(std::string_view page);

/// @name Segment frames
/// @{
constexpr uint32_t kFrameMagic = 0x43525644u; ///< "DVRC" little-endian.
constexpr uint32_t kFrameHeaderBytes = 32;
constexpr uint32_t kFrameAlign = 16;

/** Largest record a frame will admit (guards parsers fed garbage). */
constexpr uint32_t kMaxRecordBytes = 1u << 30;

/** The 32-byte header in front of every record in segments.davf. */
struct FrameHeader
{
    uint32_t size = 0;    ///< Record text bytes that follow.
    uint64_t keyHash = 0; ///< fnv1a64 of the record's key.
    uint64_t bodySum = 0; ///< fnv1a64 of the record text.

    bool operator==(const FrameHeader &) const = default;
};

/** Total frame bytes (header + record + zero pad to kFrameAlign). */
constexpr uint64_t
frameBytes(uint32_t recordSize)
{
    const uint64_t raw = kFrameHeaderBytes + uint64_t(recordSize);
    return (raw + kFrameAlign - 1) / kFrameAlign * kFrameAlign;
}

/** Serialize @p header (exactly kFrameHeaderBytes). */
std::string serializeFrameHeader(const FrameHeader &header);

/**
 * Parse a frame header; Err{BadInput} if the magic, header checksum,
 * or size bound is wrong. A valid result proves only the *header*: the
 * body must still be verified against bodySum.
 */
Result<FrameHeader> parseFrameHeader(std::string_view bytes);
/// @}

} // namespace davf::store

#endif // DAVF_STORE_LAYOUT_HH
