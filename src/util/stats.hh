/**
 * @file
 * Statistics helpers used by the vulnerability engine and bench harnesses:
 * means, geometric means, and fixed-bin histograms (for the path-length
 * distributions of Fig. 6).
 */

#ifndef DAVF_UTIL_STATS_HH
#define DAVF_UTIL_STATS_HH

#include <cstddef>
#include <string>
#include <vector>

namespace davf {

/** Arithmetic mean; 0 for an empty range. */
double mean(const std::vector<double> &values);

/**
 * Geometric mean; 0 for an empty range.
 *
 * Zero entries are handled with the standard epsilon substitution used in
 * AVF studies (a zero AVF would otherwise collapse the whole mean): values
 * below @p floor are clamped to @p floor.
 */
double geomean(const std::vector<double> &values, double floor = 1e-9);

/**
 * Maximum; 0 for an empty range.
 *
 * Unlike a fold from zero, an all-negative range returns its (negative)
 * maximum — slack margins can legitimately be below zero.
 */
double maxOf(const std::vector<double> &values);

/** A fixed-width-bin histogram over [lo, hi). */
class Histogram
{
  public:
    /** Create @p num_bins equal bins spanning [lo, hi). */
    Histogram(double lo, double hi, size_t num_bins);

    /**
     * Record one sample (clamped into the outermost bins). NaN samples
     * carry no position information and are tallied separately; see
     * invalidCount().
     */
    void add(double sample);

    /** Number of samples recorded into bins (excludes NaN samples). */
    size_t count() const { return total; }

    /** Number of NaN samples rejected by add(). */
    size_t invalidCount() const { return invalid; }

    /** Raw per-bin counts. */
    const std::vector<size_t> &bins() const { return counts; }

    /** Lower edge of bin @p index. */
    double binLo(size_t index) const;

    /** Upper edge of bin @p index. */
    double binHi(size_t index) const;

    /** Fraction of samples in bin @p index (0 if empty). */
    double fraction(size_t index) const;

    /** Render an ASCII table, one row per bin, for bench output. */
    std::string render(const std::string &label) const;

  private:
    double lo;
    double hi;
    std::vector<size_t> counts;
    size_t total = 0;
    size_t invalid = 0;
};

} // namespace davf

#endif // DAVF_UTIL_STATS_HH
