/**
 * @file
 * Figure 6 reproduction: path length distributions for the structures of
 * the Ibex-like core — for every wire of a structure, the longest
 * complete register-to-register path through that wire, as a fraction of
 * the clock period (which equals the longest path in the whole design,
 * §VI-A).
 *
 * Expected shape: the ALU (through the 32-bit adder) concentrates near
 * the critical path; the register file's mux trees sit in the mid-range;
 * the decoder is short. Static reachability at delay d (Fig. 8's first
 * component) is exactly the mass above (1 - d).
 */

#include <cstdio>

#include "bench/common.hh"
#include "util/stats.hh"

using namespace davf;
using namespace davf::bench;

int
main()
{
    std::printf("Figure 6: path length distributions per structure\n");
    std::printf("(longest complete path through each wire, normalized "
                "to the clock period)\n\n");

    IbexMini plain({}, {});
    IbexMiniConfig ecc_config;
    ecc_config.eccRegfile = true;
    IbexMini ecc(ecc_config, {});

    auto report = [](const IbexMini &soc, const std::string &name,
                     const std::string &label) {
        DelayModel delays(soc.netlist(), CellLibrary::defaultLibrary());
        Sta sta(delays);
        const double period = sta.maxPath();
        Histogram histogram(0.0, 1.0 + 1e-9, 10);
        for (WireId wire : soc.structures().find(name)->wires) {
            const double path = sta.longestPathThrough(wire);
            if (path > 0.0)
                histogram.add(path / period);
        }
        std::printf("%s\n", histogram.render(label).c_str());
    };

    for (const char *name : {"ALU", "Decoder", "Regfile", "LSU",
                             "Prefetch"})
        report(plain, name, std::string(name));
    report(ecc, "Regfile", "Regfile (ECC)");
    return 0;
}
