/**
 * @file
 * The resilient sweep executor.
 *
 * A campaign is the cross product (structures × delays [× sAVF]) over
 * one prepared VulnerabilityEngine, run cell by cell with:
 *
 *  - **journaling**: after every completed cell — and after every
 *    completed injection cycle inside a cell — the journal is rewritten
 *    atomically (checkpoint.hh), so no interruption point loses more
 *    than one injection cycle of work;
 *  - **resume**: a rerun with CampaignOptions::resume adopts completed
 *    cells verbatim and completed cycles of the in-flight cell exactly,
 *    reproducing bit-identical aggregates versus an uninterrupted run,
 *    at any thread count (the engine's per-cycle outcomes are
 *    deterministic and aggregated in cycle order);
 *  - **fault isolation**: a cell whose failure rate crosses
 *    CampaignOptions::maxFailureRate is recorded as failed with its
 *    reason and the campaign moves on — one pathological structure
 *    cannot poison the sweep;
 *  - **cooperative stop**: when the stop flag (stop.hh) is raised, the
 *    engine returns between injections, the journal and the partial CSV
 *    are flushed, and run() reports interrupted.
 */

#ifndef DAVF_CAMPAIGN_CAMPAIGN_HH
#define DAVF_CAMPAIGN_CAMPAIGN_HH

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "campaign/checkpoint.hh"
#include "campaign/supervisor.hh"
#include "core/vulnerability.hh"
#include "netlist/structure.hh"

namespace davf {

/** Where a cell's simulations execute. */
enum class IsolationMode : uint8_t {
    /** In-process, on the engine's thread pool (the default). */
    Thread,

    /**
     * In supervised worker processes (supervisor.hh): crashes, hangs,
     * and memory blowups inside one injection are contained, retried,
     * and — when persistent — bisected down to a quarantined single
     * injection while the sweep continues. Aggregates over surviving
     * injections are bit-identical to Thread mode at any worker count.
     */
    Process,

    /**
     * On remote worker nodes through a CampaignOptions::dispatcher
     * (the src/net coordinator): shards travel over TCP with
     * heartbeats, retry, node quarantine, and local fallback, and
     * every completed outcome flows through the same journal grammar,
     * so aggregates stay bit-identical to Thread mode at any node
     * count (docs/DISTRIBUTED.md).
     */
    Net,
};

/**
 * Remote-execution hook for IsolationMode::Net. The campaign stays
 * transport-agnostic: it hands whole cells to this interface and
 * journals the per-cycle outcomes it gets back exactly as in the other
 * modes. Implemented by net::Coordinator.
 */
class ShardDispatcher
{
  public:
    /** One dispatched cell's outcome (mirrors the supervisor's). */
    struct CellResult
    {
        bool failed = false; ///< A shard failed beyond repair.
        std::string failReason;
        bool stopped = false; ///< The stop flag interrupted the cell.
    };

    virtual ~ShardDispatcher() = default;

    /**
     * Compute the given injection cycles of one (structure, delay)
     * cell across the fleet. Every completed outcome is delivered
     * through @p on_cycle_done (serialized; any thread).
     */
    virtual CellResult runDavfCell(
        const std::string &structure, double delay_fraction,
        const std::vector<uint64_t> &cycles,
        const SamplingConfig &sampling,
        const std::function<void(const InjectionCycleOutcome &)>
            &on_cycle_done) = 0;

    /** Compute one sAVF cell on the fleet; @p out on success. */
    virtual CellResult runSavfCell(const std::string &structure,
                                   const SamplingConfig &sampling,
                                   SavfResult &out) = 0;
};

/** What to run and how to survive it. */
struct CampaignOptions
{
    /** Benchmark label recorded in the journal and CSV. */
    std::string benchmark = "unknown";

    /** Structure names, resolved against the registry at run(). */
    std::vector<std::string> structures;

    /** Delay fractions of the clock period, one davf cell each. */
    std::vector<double> delays;

    /** Also run a particle-strike sAVF cell per structure. */
    bool runSavf = false;

    /** Engine sampling; threads/stop flag are campaign-managed. */
    SamplingConfig sampling;

    /** Per-injection wall-clock budget in ms (0 = unlimited). */
    double injectionTimeoutMs = 0.0;

    /**
     * Batch faulty continuations on the engine's bit-parallel vector
     * path (docs/PERFORMANCE.md). Purely operational — vector and
     * scalar runs produce bit-identical results — so, like the thread
     * count, it is excluded from campaignConfigHash() and may change
     * across a resume.
     */
    bool vectorize = true;

    /** Lanes per vector batch (2..64). */
    unsigned vectorLanes = 64;

    /**
     * Batch faulted-wire cone re-simulations on the lane-parallel
     * timed simulator (src/tsim/vec_tsim.hh). Operational only —
     * results are bit-identical to the scalar path — so, like
     * vectorize, it is excluded from campaignConfigHash().
     */
    bool vectorTsim = true;

    /** Lanes per timed-simulator batch (1 forces scalar, max 64). */
    unsigned tsimLanes = 64;

    /** Failed-injection fraction beyond which a cell is abandoned. */
    double maxFailureRate = 0.05;

    /** Journal path; empty disables checkpointing. */
    std::string checkpointPath;

    /** Adopt an existing journal at checkpointPath. */
    bool resume = false;

    /** CSV output path (atomically rewritten); empty disables. */
    std::string csvPath;

    /** Label suffix for CSV rows (e.g. " (ECC)"). */
    std::string structureLabel;

    /** Cooperative stop flag (see stop.hh); may be null. */
    const std::atomic<bool> *stopFlag = nullptr;

    /** Test hook: called after every journal write. */
    std::function<void()> onCheckpointSaved;

    /** Execution isolation for cell simulations. */
    IsolationMode isolate = IsolationMode::Thread;

    /**
     * Worker pool and failure policy for IsolationMode::Process.
     * configHash, benchmark, seed, and stopFlag are filled in by the
     * campaign; the rest (workerArgv, workers, retries, quarantineDir,
     * ...) comes from the caller.
     */
    SupervisorOptions supervisor;

    /**
     * Remote dispatch hook, required for IsolationMode::Net; the
     * caller owns it (and its node fleet) and it must outlive run().
     */
    ShardDispatcher *dispatcher = nullptr;
};

/** One cell's outcome as the campaign saw it. */
struct CampaignCellResult
{
    CheckpointKey key;
    double delay = 0.0;          ///< Parsed back from key.delay.
    bool fromCheckpoint = false; ///< Adopted, not recomputed.
    bool failed = false;
    std::string failReason;
    DelayAvfResult davf;
    SavfResult savf;
};

/** The whole sweep's outcome. */
struct CampaignSummary
{
    std::vector<CampaignCellResult> cells;
    bool interrupted = false;
    uint64_t cellsComputed = 0;
    uint64_t cellsFromCheckpoint = 0;
    uint64_t cellsFailed = 0;

    /** Process isolation only: injections newly quarantined this run
     *  (already excluded from the affected cells' denominators). */
    std::vector<QuarantineRecord> quarantined;
};

/**
 * The identity of a campaign configuration, as recorded in the journal.
 * Deliberately excludes thread count and operational limits (timeout,
 * failure rate, paths): those may change across a resume without
 * affecting results.
 */
std::string campaignConfigHash(const CampaignOptions &options);

/** The sweep executor (see file comment). */
class Campaign
{
  public:
    Campaign(VulnerabilityEngine &engine,
             const StructureRegistry &structures,
             CampaignOptions options);

    /**
     * Run (or resume) the sweep. Throws DavfError for unusable input:
     * unknown structure name, a corrupt journal, or a journal written
     * by a different configuration.
     */
    CampaignSummary run();

  private:
    void flushCsv(const CampaignSummary &summary) const;
    void save() const;

    VulnerabilityEngine *engine;
    const StructureRegistry *registry;
    CampaignOptions options;
    Checkpoint journal;
    std::unique_ptr<Supervisor> supervisor; ///< Process mode, lazy.
};

} // namespace davf

#endif // DAVF_CAMPAIGN_CAMPAIGN_HH
