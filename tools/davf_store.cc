/**
 * @file
 * Offline maintenance for a result-store directory (docs/SERVICE.md,
 * docs/ROBUSTNESS.md).
 *
 * Usage:
 *   davf_store fsck [--repair] DIR
 *   davf_store compact DIR
 *   davf_store crashpoints
 *
 * `fsck` walks DIR and classifies every entry (valid / misplaced /
 * torn / garbled / orphan-tmp / foreign), printing one line per
 * problem and a summary. Exit 0 when the store is damage-free, 1 when
 * damage was found (or, with --repair, when some damage could not be
 * repaired) or the directory is unreadable, 2 on usage errors. With
 * --repair, torn and garbled
 * records are quarantined into DIR/quarantine/ and stale writer
 * temporaries are deleted; a repaired store exits 0.
 *
 * `compact` is repair plus space recovery: misplaced records are
 * re-homed to their canonical file names and duplicate-key losers are
 * dropped. Crash-safe — killing it at any instant leaves a store a
 * rerun finishes.
 *
 * `crashpoints` prints every crash-point name compiled into this
 * binary (util/crashpoint.hh), one per line; the CI crash soak
 * iterates this list.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "service/store_fsck.hh"
#include "util/crashpoint.hh"
#include "util/logging.hh"

using namespace davf;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s fsck [--repair] DIR\n"
                 "       %s compact DIR\n"
                 "       %s crashpoints\n",
                 argv0, argv0, argv0);
    return 2;
}

void
printReport(const service::FsckReport &report)
{
    for (const service::StoreEntry &entry : report.entries) {
        if (entry.kind == service::StoreEntryKind::Valid
            || entry.kind == service::StoreEntryKind::Foreign) {
            continue;
        }
        std::fprintf(stderr, "%-10s %s%s%s\n",
                     service::storeEntryKindName(entry.kind),
                     entry.name.c_str(),
                     entry.detail.empty() ? "" : ": ",
                     entry.detail.c_str());
    }
    std::fprintf(stderr,
                 "%llu valid, %llu misplaced, %llu torn, %llu garbled, "
                 "%llu orphan tmp(s), %llu foreign\n",
                 (unsigned long long)report.valid,
                 (unsigned long long)report.misplaced,
                 (unsigned long long)report.torn,
                 (unsigned long long)report.garbled,
                 (unsigned long long)report.orphanTmps,
                 (unsigned long long)report.foreign);
    if (report.quarantined || report.removedTmps || report.rehomed
        || report.duplicateLosers) {
        std::fprintf(stderr,
                     "repaired: %llu quarantined, %llu tmp(s) removed, "
                     "%llu re-homed, %llu duplicate loser(s) dropped\n",
                     (unsigned long long)report.quarantined,
                     (unsigned long long)report.removedTmps,
                     (unsigned long long)report.rehomed,
                     (unsigned long long)report.duplicateLosers);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    return guardedMain([&]() -> int {
        if (argc < 2)
            return usage(argv[0]);
        const std::string verb = argv[1];

        if (verb == "crashpoints") {
            for (const std::string &name : crashpoint::knownPoints())
                std::printf("%s\n", name.c_str());
            return 0;
        }

        if (verb == "fsck") {
            service::FsckOptions options;
            std::string dir;
            for (int i = 2; i < argc; ++i) {
                if (std::strcmp(argv[i], "--repair") == 0)
                    options.repair = true;
                else if (dir.empty())
                    dir = argv[i];
                else
                    return usage(argv[0]);
            }
            if (dir.empty())
                return usage(argv[0]);
            const service::FsckReport report =
                service::fsckStore(dir, options);
            printReport(report);
            return report.clean() ? 0 : 1;
        }

        if (verb == "compact") {
            if (argc != 3)
                return usage(argv[0]);
            const service::FsckReport report =
                service::compactStore(argv[2]);
            printReport(report);
            return report.clean() ? 0 : 1;
        }

        return usage(argv[0]);
    });
}
