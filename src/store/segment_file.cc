#include "segment_file.hh"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "util/crashpoint.hh"
#include "util/logging.hh"

namespace davf::store {

namespace {

/** pwrite all of @p bytes at @p offset; false on any failure. */
bool
pwriteAll(int fd, std::string_view bytes, uint64_t offset)
{
    size_t done = 0;
    while (done < bytes.size()) {
        const ssize_t n = ::pwrite(fd, bytes.data() + done,
                                   bytes.size() - done,
                                   static_cast<off_t>(offset + done));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        done += static_cast<size_t>(n);
    }
    return true;
}

/** pread exactly @p size bytes at @p offset; false on EOF/failure. */
bool
preadAll(int fd, char *out, size_t size, uint64_t offset)
{
    size_t done = 0;
    while (done < size) {
        const ssize_t n = ::pread(fd, out + done, size - done,
                                  static_cast<off_t>(offset + done));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false;
        done += static_cast<size_t>(n);
    }
    return true;
}

} // namespace

SegmentFile::~SegmentFile()
{
    close();
    for (const auto &[base, size] : retiredMaps)
        ::munmap(base, size);
    retiredMaps.clear();
}

void
SegmentFile::mapFile(uint64_t size)
{
    retireMap();
    if (size == 0)
        return;
    void *base = ::mmap(nullptr, static_cast<size_t>(size), PROT_READ,
                        MAP_SHARED, fd, 0);
    if (base == MAP_FAILED)
        return; // pread fallback covers everything.
    mapBase = static_cast<const char *>(base);
    mapLen = size;
}

void
SegmentFile::retireMap()
{
    // Never munmap while the object lives: a lock-free reader may be
    // mid-copy in the old mapping (mirrors HashIndex's retired
    // directory tables). The destructor frees the backlog.
    if (mapBase != nullptr) {
        retiredMaps.emplace_back(
            const_cast<char *>(mapBase), static_cast<size_t>(mapLen));
    }
    mapBase = nullptr;
    mapLen = 0;
}

void
SegmentFile::open(const std::string &the_path)
{
    close();
    path = the_path;
    fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0) {
        davf_throw(ErrorKind::Io, "cannot open segment file '", path,
                   "': ", std::strerror(errno));
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
        const int saved = errno;
        close();
        davf_throw(ErrorKind::Io, "cannot stat segment file '", path,
                   "': ", std::strerror(saved));
    }
    appendOffset = static_cast<uint64_t>(st.st_size);
    mapFile(appendOffset);
}

void
SegmentFile::close()
{
    retireMap();
    if (fd >= 0)
        ::close(fd);
    fd = -1;
    appendOffset = 0;
}

uint64_t
SegmentFile::append(std::string_view record, uint64_t keyHash)
{
    static const crashpoint::CrashPoint append_point("index.append");

    davf_assert(fd >= 0, "append on a closed segment file");
    FrameHeader header;
    header.size = static_cast<uint32_t>(record.size());
    header.keyHash = keyHash;
    header.bodySum = fnv1a64(record);

    std::string frame = serializeFrameHeader(header);
    frame.append(record);
    frame.resize(frameBytes(header.size), '\0');

    // Same payload-damage contract as atomic_file.write: `torn` and
    // `garble` publish damaged bytes and die (rename-less equivalent
    // of metadata surviving a power cut the data did not), `enospc`
    // stops mid-frame and fails like a full disk. The logical offset
    // only advances on success, so a survived failure is overwritten
    // by the next append.
    std::string_view payload = frame;
    bool fail_enospc = false;
    bool kill_after_publish = false;
    switch (append_point.firePayload(frame.size())) {
      case crashpoint::Action::Torn:
        payload = std::string_view(frame).substr(
            0, crashpoint::damageOffset(frame.size()));
        kill_after_publish = true;
        break;
      case crashpoint::Action::Garble:
        frame[crashpoint::damageOffset(frame.size())] ^= 0x40;
        kill_after_publish = true;
        break;
      case crashpoint::Action::Enospc:
        payload = std::string_view(frame).substr(
            0, crashpoint::damageOffset(frame.size()));
        fail_enospc = true;
        break;
      default:
        break;
    }

    if (!pwriteAll(fd, payload, appendOffset)) {
        davf_throw(ErrorKind::Io, "short write to '", path, "': ",
                   std::strerror(errno));
    }
    if (fail_enospc) {
        davf_throw(ErrorKind::Io, "short write to '", path,
                   "': no space left on device (injected)");
    }
    if (syncAppends || kill_after_publish)
        sync();
    if (kill_after_publish)
        crashpoint::killProcess("index.append");

    const uint64_t offset = appendOffset;
    appendOffset += frame.size();
    return offset;
}

Result<std::string_view>
SegmentFile::readView(uint64_t offset, uint32_t expectSize,
                      std::string &scratch) const
{
    using R = Result<std::string_view>;
    if (fd < 0)
        return R::Err(ErrorKind::Io, "segment file not open");
    if (offset + kFrameHeaderBytes > appendOffset)
        return R::Err(ErrorKind::BadInput, "frame offset out of range");

    // Hot path: the whole frame sits inside the mapping made at open.
    // Frames appended since then fall through to the pread path.
    if (mapBase != nullptr && offset + kFrameHeaderBytes <= mapLen) {
        auto header = parseFrameHeader(
            std::string_view(mapBase + offset, kFrameHeaderBytes));
        if (!header)
            return R::Err(header.error());
        if (expectSize != 0 && header.value().size != expectSize) {
            return R::Err(ErrorKind::BadInput,
                          "frame size disagrees with index slot");
        }
        const uint64_t end = offset + frameBytes(header.value().size);
        if (end > appendOffset)
            return R::Err(ErrorKind::BadInput,
                          "frame extends past tail");
        if (end <= mapLen) {
            const std::string_view record(
                mapBase + offset + kFrameHeaderBytes,
                header.value().size);
            if (fnv1a64(record) != header.value().bodySum) {
                return R::Err(ErrorKind::BadInput,
                              "frame body checksum mismatch (garbled)");
            }
            return R::Ok(record);
        }
    }

    char head[kFrameHeaderBytes];
    if (!preadAll(fd, head, sizeof(head), offset))
        return R::Err(ErrorKind::BadInput, "frame header unreadable");
    auto header =
        parseFrameHeader(std::string_view(head, sizeof(head)));
    if (!header)
        return R::Err(header.error());
    if (expectSize != 0 && header.value().size != expectSize) {
        return R::Err(ErrorKind::BadInput,
                      "frame size disagrees with index slot");
    }
    if (offset + frameBytes(header.value().size) > appendOffset)
        return R::Err(ErrorKind::BadInput, "frame extends past tail");
    scratch.resize(header.value().size);
    if (!preadAll(fd, scratch.data(), scratch.size(),
                  offset + kFrameHeaderBytes)) {
        return R::Err(ErrorKind::BadInput, "frame body unreadable");
    }
    if (fnv1a64(scratch) != header.value().bodySum) {
        return R::Err(ErrorKind::BadInput,
                      "frame body checksum mismatch (garbled)");
    }
    return R::Ok(std::string_view(scratch));
}

Result<std::string>
SegmentFile::read(uint64_t offset, uint32_t expectSize) const
{
    using R = Result<std::string>;
    std::string scratch;
    auto view = readView(offset, expectSize, scratch);
    if (!view)
        return R::Err(view.error());
    if (!scratch.empty())
        return R::Ok(std::move(scratch));
    return R::Ok(std::string(view.value()));
}

SegmentFile::ScanStats
SegmentFile::scan(uint64_t from,
                  const std::function<void(uint64_t, const FrameHeader &,
                                           bool)> &fn) const
{
    ScanStats stats;
    davf_assert(fd >= 0, "scan on a closed segment file");
    uint64_t at = from;
    uint64_t skipStart = 0;
    bool skipping = false;
    while (at + kFrameHeaderBytes <= appendOffset) {
        char head[kFrameHeaderBytes];
        bool frameOk = preadAll(fd, head, sizeof(head), at);
        FrameHeader header;
        if (frameOk) {
            auto parsed =
                parseFrameHeader(std::string_view(head, sizeof(head)));
            if (parsed
                && at + frameBytes(parsed.value().size) <= appendOffset) {
                header = parsed.value();
            } else {
                frameOk = false;
            }
        }
        if (!frameOk) {
            // Not a frame boundary: resynchronise forward. Frames are
            // 16-byte aligned, so damage is skipped in aligned steps
            // and any later intact frame is still found.
            if (!skipping) {
                skipping = true;
                skipStart = at;
            }
            at += kFrameAlign;
            continue;
        }
        if (skipping) {
            stats.skippedBytes += at - skipStart;
            skipping = false;
        }
        std::string record(header.size, '\0');
        bool bodyValid = preadAll(fd, record.data(), record.size(),
                                  at + kFrameHeaderBytes)
            && fnv1a64(record) == header.bodySum;
        if (bodyValid)
            ++stats.valid;
        else
            ++stats.garbled;
        if (fn)
            fn(at, header, bodyValid);
        at += frameBytes(header.size);
    }
    if (skipping) {
        // Unframeable bytes reach EOF: the torn tail.
        stats.tailOffset = skipStart;
        stats.tornTail = true;
    } else if (at < appendOffset) {
        // A partial frame header at EOF is also a torn tail.
        stats.tailOffset = at;
        stats.tornTail = true;
    } else {
        stats.tailOffset = appendOffset;
    }
    return stats;
}

Result<std::string>
SegmentFile::readRaw(uint64_t offset, uint64_t size) const
{
    using R = Result<std::string>;
    std::string bytes(size, '\0');
    if (fd < 0 || !preadAll(fd, bytes.data(), bytes.size(), offset))
        return R::Err(ErrorKind::Io, "cannot read raw segment bytes");
    return R::Ok(std::move(bytes));
}

void
SegmentFile::zeroRange(uint64_t offset, uint64_t size)
{
    davf_assert(fd >= 0, "zeroRange on a closed segment file");
    const std::string zeros(size, '\0');
    if (!pwriteAll(fd, zeros, offset)) {
        davf_throw(ErrorKind::Io, "cannot zero range in '", path,
                   "': ", std::strerror(errno));
    }
    sync();
}

void
SegmentFile::sync() const
{
    if (fd >= 0 && ::fdatasync(fd) != 0 && errno != EINVAL
        && errno != ENOTSUP) {
        davf_throw(ErrorKind::Io, "cannot fdatasync '", path, "': ",
                   std::strerror(errno));
    }
}

void
SegmentFile::alignAppend()
{
    appendOffset =
        (appendOffset + kFrameAlign - 1) / kFrameAlign * kFrameAlign;
}

void
SegmentFile::truncateTo(uint64_t offset)
{
    davf_assert(fd >= 0, "truncate on a closed segment file");
    if (::ftruncate(fd, static_cast<off_t>(offset)) != 0) {
        davf_throw(ErrorKind::Io, "cannot truncate '", path, "': ",
                   std::strerror(errno));
    }
    appendOffset = offset;
    // Pages past EOF would SIGBUS if touched; shrink the window (the
    // appendOffset bound already keeps readers below it).
    if (mapLen > offset)
        mapLen = offset;
}

} // namespace davf::store
