/**
 * @file
 * Table II reproduction: number of cycles executed per benchmark on the
 * core (the golden-run length N used as the DelayAVF denominator).
 *
 * Paper reference values (Ibex): md5 1720, bubblesort 3829,
 * libstrstr 1051, libfibcall 2448, matmult 8903. The kernels here are
 * scaled to the same order of magnitude; the expected shape is
 * matmult > bubblesort/libfibcall > md5 > libstrstr.
 */

#include <cstdio>

#include "bench/common.hh"

using namespace davf;
using namespace davf::bench;

int
main()
{
    std::printf("Table II: number of cycles executed per benchmark\n\n");
    std::printf("%-22s%12s%12s\n", "Benchmark", "# cycles N",
                "# outputs");
    printRule(2);

    BenchLab lab;
    for (const std::string &name : kBenchmarks) {
        BenchContext &ctx = lab.context(name);
        std::printf("%-22s%12llu%12zu\n", name.c_str(),
                    static_cast<unsigned long long>(
                        ctx.engine->goldenCycles()),
                    ctx.engine->goldenOutput().size());
    }

    std::printf("\nDesign clock period (timing-closure emulation, "
                "suite-harmonized): %.1f ps\n",
                lab.context("md5").engine->clockPeriod());
    return 0;
}
