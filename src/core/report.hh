/**
 * @file
 * Result serialization: CSV rows and JSON objects for DelayAVF / sAVF
 * results, so downstream tooling (plotting scripts, regression
 * dashboards) can consume engine output without scraping stdout.
 */

#ifndef DAVF_CORE_REPORT_HH
#define DAVF_CORE_REPORT_HH

#include <string>

#include "core/vulnerability.hh"

namespace davf {

/** Column header matching delayAvfCsvRow(). */
std::string delayAvfCsvHeader();

/**
 * One CSV row for a DelayAVF evaluation.
 *
 * @param benchmark workload label.
 * @param structure structure label.
 * @param delay_fraction the d used, as a fraction of the period.
 */
std::string delayAvfCsvRow(const std::string &benchmark,
                           const std::string &structure,
                           double delay_fraction,
                           const DelayAvfResult &result);

/** Column header matching savfCsvRow(). */
std::string savfCsvHeader();

/** One CSV row for an sAVF evaluation. */
std::string savfCsvRow(const std::string &benchmark,
                       const std::string &structure,
                       const SavfResult &result);

/** A JSON object (single line) for a DelayAVF evaluation. */
std::string delayAvfJson(const std::string &benchmark,
                         const std::string &structure,
                         double delay_fraction,
                         const DelayAvfResult &result);

/** A JSON object (single line) for an sAVF evaluation. */
std::string savfJson(const std::string &benchmark,
                     const std::string &structure,
                     const SavfResult &result);

} // namespace davf

#endif // DAVF_CORE_REPORT_HH
