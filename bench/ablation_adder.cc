/**
 * @file
 * Ablation bench (beyond the paper's tables): how the datapath's adder
 * architecture shapes DelayAVF.
 *
 * DESIGN.md calls out the adder choice as the load-bearing substrate
 * decision: a ripple-carry adder creates a topological critical path
 * (full carry propagation) that is almost never dynamically sensitized,
 * leaving every real signal with enormous slack and pushing DelayAVF
 * toward zero; a Kogge-Stone adder equalizes typical and worst-case
 * depth, the regime of timing-closed cores the paper targets. This
 * bench builds a standalone 16-bit accumulator datapath both ways and
 * compares static-vs-dynamic reach and DelayAVF under an identical
 * random-stimulus workload.
 */

#include <cstdio>

#include "bench/common.hh"
#include "core/workload.hh"
#include "util/rng.hh"

using namespace davf;
using namespace davf::bench;

namespace {

struct AdderRig
{
    std::unique_ptr<Netlist> netlist;
    std::unique_ptr<TraceWorkload> workload;
    Structure structure;
};

/** A 16-bit accumulator: acc' = acc + lfsr, observed by a trace sink. */
AdderRig
buildRig(bool kogge_stone)
{
    constexpr unsigned width = 16;
    AdderRig rig;
    rig.netlist = std::make_unique<Netlist>();
    Netlist &nl = *rig.netlist;
    ModuleBuilder b(nl);
    b.pushScope("rig");

    // Galois LFSR as a stimulus source (taps 16,14,13,11).
    Bus lfsr;
    {
        Bus d = b.freshBus(width, "lfsr_d");
        lfsr = b.regB(d, 0xace1, "lfsr");
        const NetId fb = lfsr[0];
        Bus next(width);
        for (unsigned i = 0; i + 1 < width; ++i)
            next[i] = lfsr[i + 1];
        next[width - 1] = fb;
        for (unsigned tap : {13, 12, 10}) // Bits 14,13,11 (1-based).
            next[tap] = b.xor2(next[tap], fb);
        b.connectBus(d, next);
    }

    Bus acc_d = b.freshBus(width, "acc_d");
    const Bus acc = b.regB(acc_d, 0, "acc");
    b.pushScope("adder");
    const Bus sum = kogge_stone
        ? b.koggeStoneAdder(acc, lfsr, b.constant(false))
        : b.rippleAdder(acc, lfsr, b.constant(false));
    b.popScope();
    b.connectBus(acc_d, sum);

    Bus sink_in = acc;
    sink_in.push_back(b.constant(true));
    const CellId sink = nl.addBehavioral(
        "rig/sink", std::make_shared<TraceSinkModel>(width), sink_in,
        {});
    b.popScope();
    nl.insertFanoutBuffers();
    nl.finalize();

    StructureRegistry registry(nl);
    rig.structure = registry.add("Adder", "rig/adder/");
    rig.workload = std::make_unique<TraceWorkload>(sink, 48);
    return rig;
}

void
evaluate(const char *label, bool kogge_stone)
{
    AdderRig rig = buildRig(kogge_stone);
    EngineOptions options;
    options.periodMode =
        EngineOptions::PeriodMode::ObservedMaxPlusMargin;
    VulnerabilityEngine engine(*rig.netlist,
                               CellLibrary::defaultLibrary(),
                               *rig.workload, options);

    std::printf("%s: %zu adder wires, observed-closure period %.0f ps "
                "(STA max %.0f ps, pessimism %.2fx)\n",
                label, rig.structure.wires.size(), engine.clockPeriod(),
                engine.sta().maxPath(),
                engine.sta().maxPath() / engine.clockPeriod());

    SamplingConfig config;
    config.maxInjectionCycles = 8;
    printHeader("  d", {"StaticReach", "DynReach", "DelayAVF"});
    for (double d : {0.3, 0.6, 0.9}) {
        const DelayAvfResult result =
            engine.delayAvf(rig.structure, d, config);
        printRow("  " + std::to_string(static_cast<int>(d * 100)) + "%",
                 {result.staticWireFraction, result.dynamicWireFraction,
                  result.delayAvf},
                 4);
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("Ablation: adder architecture vs DelayAVF\n\n");
    evaluate("ripple-carry", false);
    evaluate("kogge-stone", true);
    std::printf("Expected: the ripple design shows a much larger "
                "STA-vs-closure pessimism gap\nand lower dynamic "
                "reach/DelayAVF at equal d than the Kogge-Stone "
                "design.\n");
    return 0;
}
