#include "ibex_mini.hh"

#include "builder/ecc.hh"
#include "util/bits.hh"
#include "util/logging.hh"

namespace davf {

namespace {

/** A register whose D input is connected after its Q is used. */
struct FwdReg
{
    Bus d;
    Bus q;
};

FwdReg
makeReg(ModuleBuilder &b, unsigned width, uint64_t reset_value,
        const std::string &hint)
{
    FwdReg reg;
    reg.d = b.freshBus(width, hint + "_d");
    reg.q = b.regB(reg.d, reset_value, hint);
    return reg;
}

/** Slice bus[at .. at+width). */
Bus
slice(const Bus &bus, unsigned at, unsigned width)
{
    davf_assert(at + width <= bus.size(), "slice out of range");
    return Bus(bus.begin() + at, bus.begin() + at + width);
}

/** Bus of @p count copies of one net. */
Bus
replicate(NetId net, unsigned count)
{
    return Bus(count, net);
}

} // namespace

IbexMini::IbexMini(const IbexMiniConfig &config,
                   const std::vector<uint32_t> &image)
    : cfg(config)
{
    build(image);
}

void
IbexMini::build(const std::vector<uint32_t> &image)
{
    ModuleBuilder b(nl);
    mem = std::make_shared<MemoryModel>(cfg.memWordsLog2, image);

    const unsigned iaddr_bits = mem->iaddrBits();
    const unsigned daddr_bits = mem->daddrBits();

    // ------------------------------------------------------------------
    // Forward nets: memory pins and cross-module feedback signals.
    // ------------------------------------------------------------------
    const Bus mem_iaddr = b.freshBus(iaddr_bits, "mem_iaddr");
    const Bus mem_daddr = b.freshBus(daddr_bits, "mem_daddr");
    const Bus mem_dwdata = b.freshBus(32, "mem_dwdata");
    const NetId mem_dwe = b.freshNet("mem_dwe");
    const Bus mem_dben = b.freshBus(4, "mem_dben");

    Bus mem_inputs;
    for (const Bus *bus : {&mem_iaddr, &mem_daddr, &mem_dwdata})
        mem_inputs.insert(mem_inputs.end(), bus->begin(), bus->end());
    mem_inputs.push_back(mem_dwe);
    mem_inputs.insert(mem_inputs.end(), mem_dben.begin(), mem_dben.end());

    Bus mem_outputs = b.freshBus(65, "mem_out");
    nl.addBehavioral("mem", mem, mem_inputs, mem_outputs);
    const Bus idata = slice(mem_outputs, 0, 32);
    const Bus drdata = slice(mem_outputs, 32, 32);
    haltedNetId = mem_outputs[64];

    // EX-stage signals consumed by the prefetch unit, driven by ctl.
    const NetId redirect = b.freshNet("redirect");
    const Bus rtarget = b.freshBus(32, "rtarget");
    const NetId consume = b.freshNet("consume");

    // Regfile write port, driven by ctl.
    const NetId rf_we = b.freshNet("rf_we");
    const Bus rf_wdata = b.freshBus(32, "rf_wdata");

    // ------------------------------------------------------------------
    // Prefetch unit.
    // ------------------------------------------------------------------
    NetId head_valid;
    Bus head_instr;
    Bus head_pc;
    {
        BuilderScope scope(b, "prefetch");
        FwdReg fpc = makeReg(b, 32, 0, "fpc");
        FwdReg f0v = makeReg(b, 1, 0, "f0v");
        FwdReg f1v = makeReg(b, 1, 0, "f1v");
        FwdReg f0i = makeReg(b, 32, 0, "f0i");
        FwdReg f1i = makeReg(b, 32, 0, "f1i");
        FwdReg f0p = makeReg(b, 32, 0, "f0p");
        FwdReg f1p = makeReg(b, 32, 0, "f1p");
        FwdReg rsp_pending = makeReg(b, 1, 0, "rsp_pending");
        FwdReg rsp_pc = makeReg(b, 32, 0, "rsp_pc");

        const NetId f0_valid = f0v.q[0];
        const NetId f1_valid = f1v.q[0];
        const NetId rsp_valid = rsp_pending.q[0];

        // Head selection: FIFO slot 0, or the arriving response (bypass).
        head_valid = b.or2(f0_valid, rsp_valid);
        head_instr = b.muxB(f0_valid, idata, f0i.q);
        head_pc = b.muxB(f0_valid, rsp_pc.q, f0p.q);

        const NetId consumed = b.and2(consume, head_valid);

        // FIFO next state: drop the head if consumed, append the
        // response (the newest entry) if one arrived. When the FIFO is
        // empty the head *is* the bypassed response, so a consumed
        // response must not also be enqueued (hence the f0_valid guard).
        const NetId nf0v = b.mux(consumed, b.or2(f0_valid, rsp_valid),
                                 b.or2(f1_valid,
                                       b.and2(rsp_valid, f0_valid)));
        const NetId nf1v = b.mux(
            consumed,
            b.or2(f1_valid, b.and2(f0_valid, rsp_valid)),
            b.and2(f1_valid, rsp_valid));
        const Bus nf0i = b.muxB(consumed, b.muxB(f0_valid, idata, f0i.q),
                                b.muxB(f1_valid, idata, f1i.q));
        const Bus nf0p = b.muxB(consumed,
                                b.muxB(f0_valid, rsp_pc.q, f0p.q),
                                b.muxB(f1_valid, rsp_pc.q, f1p.q));
        const Bus nf1i = b.muxB(consumed, b.muxB(f1_valid, idata, f1i.q),
                                idata);
        const Bus nf1p = b.muxB(consumed,
                                b.muxB(f1_valid, rsp_pc.q, f1p.q),
                                rsp_pc.q);

        // A redirect flushes everything queued or in flight.
        const NetId keep = b.inv(redirect);
        b.connectBus(f0v.d, {b.and2(nf0v, keep)});
        b.connectBus(f1v.d, {b.and2(nf1v, keep)});
        b.connectBus(f0i.d, nf0i);
        b.connectBus(f1i.d, nf1i);
        b.connectBus(f0p.d, nf0p);
        b.connectBus(f1p.d, nf1p);

        // Request issue: always on redirect (the FIFO is flushed);
        // otherwise only while a slot remains for the response.
        const NetId room = b.nand2(nf0v, nf1v);
        const NetId issue = b.or2(redirect, room);
        const Bus req_addr = b.muxB(redirect, fpc.q, rtarget);
        const Bus req_plus4 =
            b.adder(req_addr, b.constantBus(32, 4), b.constant(false));
        b.connectBus(fpc.d, b.muxB(issue, fpc.q, req_plus4));
        b.connectBus(rsp_pending.d, {issue});
        b.connectBus(rsp_pc.d, b.muxB(issue, rsp_pc.q, req_addr));

        b.connectBus(mem_iaddr, slice(req_addr, 2, iaddr_bits));
    }

    // Instruction fields (pure wiring).
    const Bus rd_field = slice(head_instr, 7, 5);
    const Bus rs1_field = slice(head_instr, 15, 5);
    const Bus rs2_field = slice(head_instr, 20, 5);

    // ------------------------------------------------------------------
    // Decoder.
    // ------------------------------------------------------------------
    NetId is_load, is_store, is_branch, is_jal, is_jalr, is_lui;
    NetId is_lb, is_lw, is_sb;
    NetId is_mul = kInvalidId;
    NetId opa_pc, opa_zero, opb_imm, wr_en;
    Bus imm, btype_imm, f3dec;
    Bus alu_sel; // One-hot: add sub sll slt sltu xor srl sra or and.
    {
        BuilderScope scope(b, "decoder");
        const Bus opc = slice(head_instr, 2, 5);
        const Bus opdec = b.decode(opc);
        is_load = opdec[0x00];
        const NetId is_opimm = opdec[0x04];
        const NetId is_auipc = opdec[0x05];
        is_store = opdec[0x08];
        const NetId is_op = opdec[0x0c];
        is_lui = opdec[0x0d];
        is_branch = opdec[0x18];
        is_jalr = opdec[0x19];
        is_jal = opdec[0x1b];

        const Bus funct3 = slice(head_instr, 12, 3);
        f3dec = b.decode(funct3);
        const NetId funct7b5 = head_instr[30];

        is_lb = b.and2(is_load, f3dec[0]);
        is_lw = b.and2(is_load, f3dec[2]);
        is_sb = b.and2(is_store, f3dec[0]);

        // Immediates.
        const NetId sign = head_instr[31];
        Bus imm_i = slice(head_instr, 20, 12);
        imm_i.resize(32, sign);
        Bus imm_s = slice(head_instr, 7, 5);
        {
            const Bus hi = slice(head_instr, 25, 7);
            imm_s.insert(imm_s.end(), hi.begin(), hi.end());
            imm_s.resize(32, sign);
        }
        Bus imm_b;
        imm_b.push_back(b.constant(false));
        for (unsigned i = 8; i <= 11; ++i)
            imm_b.push_back(head_instr[i]);
        for (unsigned i = 25; i <= 30; ++i)
            imm_b.push_back(head_instr[i]);
        imm_b.push_back(head_instr[7]);
        imm_b.resize(32, sign);
        Bus imm_u = b.constantBus(12, 0);
        for (unsigned i = 12; i <= 31; ++i)
            imm_u.push_back(head_instr[i]);
        Bus imm_j;
        imm_j.push_back(b.constant(false));
        for (unsigned i = 21; i <= 30; ++i)
            imm_j.push_back(head_instr[i]);
        imm_j.push_back(head_instr[20]);
        for (unsigned i = 12; i <= 19; ++i)
            imm_j.push_back(head_instr[i]);
        imm_j.resize(32, sign);

        const NetId use_i = b.or3(is_load, is_opimm, is_jalr);
        const NetId use_u = b.or2(is_lui, is_auipc);
        imm = b.onehotMux({use_i, is_store, use_u, is_jal},
                          {imm_i, imm_s, imm_u, imm_j});
        btype_imm = b.muxB(is_jal, imm_b, imm_j);

        // ALU operation one-hot.
        const NetId alu_class = b.or2(is_op, is_opimm);
        const NetId f30 = f3dec[0];
        const NetId alu_add_cls =
            b.and2(alu_class,
                   b.and2(f30, b.or2(is_opimm, b.inv(funct7b5))));
        const NetId alu_add =
            b.or2(alu_add_cls,
                  b.or3(b.or2(is_load, is_store),
                        b.or2(is_lui, is_auipc), is_jalr));
        const NetId alu_sub = b.and3(is_op, f30, funct7b5);
        const NetId alu_sll = b.and2(alu_class, f3dec[1]);
        const NetId alu_slt = b.and2(alu_class, f3dec[2]);
        const NetId alu_sltu = b.and2(alu_class, f3dec[3]);
        const NetId alu_xor = b.and2(alu_class, f3dec[4]);
        const NetId alu_srl =
            b.and3(alu_class, f3dec[5], b.inv(funct7b5));
        const NetId alu_sra = b.and3(alu_class, f3dec[5], funct7b5);
        const NetId alu_or = b.and2(alu_class, f3dec[6]);
        const NetId alu_and = b.and2(alu_class, f3dec[7]);
        alu_sel = {alu_add, alu_sub, alu_sll, alu_slt, alu_sltu,
                   alu_xor, alu_srl, alu_sra, alu_or, alu_and};

        opa_pc = b.or2(is_auipc, is_jal); // (jal result uses pc4 anyway)
        opa_zero = is_lui;
        opb_imm = b.inv(b.or2(is_op, is_branch));
        wr_en = b.or3(b.or2(is_lui, is_auipc), b.or2(is_jal, is_jalr),
                      b.or3(is_load, is_op, is_opimm));

        if (cfg.enableMul) {
            // MUL = OP with funct7 == 0000001, funct3 == 000.
            const NetId f7_hi_zero = b.inv(b.reduceOr(
                {head_instr[26], head_instr[27], head_instr[28],
                 head_instr[29], head_instr[30], head_instr[31]}));
            is_mul = b.and3(is_op, f3dec[0],
                            b.and2(head_instr[25], f7_hi_zero));
        }
    }

    // ------------------------------------------------------------------
    // Register file (optionally ECC protected).
    // ------------------------------------------------------------------
    Bus rs1_data, rs2_data;
    {
        BuilderScope scope(b, "regfile");
        const unsigned store_width =
            cfg.eccRegfile ? eccCodeWidth(32) : 32;
        const Bus store_data =
            cfg.eccRegfile ? eccEncode(b, rf_wdata) : rf_wdata;

        const Bus wdec = b.decode(rd_field);
        std::vector<Bus> q(32);
        q[0] = b.constantBus(store_width, 0);
        for (unsigned reg = 1; reg < 32; ++reg) {
            const NetId wren = b.and2(wdec[reg], rf_we);
            q[reg] = b.regE(store_data, wren, 0,
                            "x" + std::to_string(reg) + "_");
        }

        const Bus r1code = b.muxTree(rs1_field, q);
        const Bus r2code = b.muxTree(rs2_field, q);
        rs1_data = cfg.eccRegfile ? eccCorrect(b, r1code, 32) : r1code;
        rs2_data = cfg.eccRegfile ? eccCorrect(b, r2code, 32) : r2code;
    }

    // ------------------------------------------------------------------
    // ALU.
    // ------------------------------------------------------------------
    Bus alu_result, btarget;
    NetId cmp_eq, cmp_lt, cmp_ltu;
    {
        BuilderScope scope(b, "alu");
        const Bus op_a = b.muxB(
            opa_zero, b.muxB(opa_pc, rs1_data, head_pc),
            b.constantBus(32, 0));
        const Bus op_b = b.muxB(opb_imm, rs2_data, imm);

        const NetId alu_sub = alu_sel[1];
        const Bus b_eff = b.xorB(op_b, replicate(alu_sub, 32));
        const Bus addsub = b.adder(op_a, b_eff, alu_sub);

        const Bus shamt = slice(op_b, 0, 5);
        const Bus sll_out = b.barrelShift(op_a, shamt, false, false);
        const NetId sra_fill = b.and2(alu_sel[7], op_a[31]);
        const Bus srx_out = b.barrelShiftRightFill(op_a, shamt, sra_fill);

        Bus slt_out = {b.lessThanSigned(op_a, op_b)};
        slt_out.resize(32, b.constant(false));
        Bus sltu_out = {b.lessThanUnsigned(op_a, op_b)};
        sltu_out.resize(32, b.constant(false));

        const Bus xor_out = b.xorB(op_a, op_b);
        const Bus or_out = b.orB(op_a, op_b);
        const Bus and_out = b.andB(op_a, op_b);

        const NetId sel_addsub = b.or2(alu_sel[0], alu_sel[1]);
        const NetId sel_srx = b.or2(alu_sel[6], alu_sel[7]);
        alu_result = b.onehotMux(
            {sel_addsub, alu_sel[2], alu_sel[3], alu_sel[4], alu_sel[5],
             sel_srx, alu_sel[8], alu_sel[9]},
            {addsub, sll_out, slt_out, sltu_out, xor_out, srx_out,
             or_out, and_out});

        // Branch comparators and the branch/jump target adder.
        cmp_eq = b.equal(rs1_data, rs2_data);
        cmp_lt = b.lessThanSigned(rs1_data, rs2_data);
        cmp_ltu = b.lessThanUnsigned(rs1_data, rs2_data);
        btarget = b.adder(head_pc, btype_imm, b.constant(false));
    }

    // ------------------------------------------------------------------
    // LSU.
    // ------------------------------------------------------------------
    Bus load_data;
    NetId lsu_phase;
    {
        BuilderScope scope(b, "lsu");
        FwdReg phase = makeReg(b, 1, 0, "phase");
        lsu_phase = phase.q[0];

        const NetId load_v = b.and2(head_valid, is_load);
        b.connectBus(phase.d, {b.and2(load_v, b.inv(lsu_phase))});

        // Data port request.
        b.connectBus(mem_daddr, slice(alu_result, 2, daddr_bits));
        b.connect(mem_dwe, b.and2(head_valid, is_store));
        const Bus bdec = b.decode(slice(alu_result, 0, 2));
        for (unsigned i = 0; i < 4; ++i)
            b.connect(mem_dben[i],
                      b.mux(is_sb, b.constant(true), bdec[i]));
        Bus sb_data = slice(rs2_data, 0, 8);
        {
            const Bus low = sb_data;
            for (int rep = 0; rep < 3; ++rep)
                sb_data.insert(sb_data.end(), low.begin(), low.end());
        }
        b.connectBus(mem_dwdata, b.muxB(is_sb, rs2_data, sb_data));

        // Load data extraction.
        const Bus byte_sel = slice(alu_result, 0, 2);
        const Bus byte = b.muxTree(
            byte_sel, {slice(drdata, 0, 8), slice(drdata, 8, 8),
                       slice(drdata, 16, 8), slice(drdata, 24, 8)});
        const NetId sign = b.and2(is_lb, byte[7]);
        Bus extended = byte;
        extended.resize(32, sign);
        load_data = b.muxB(is_lw, extended, drdata);
    }

    // ------------------------------------------------------------------
    // Iterative multiplier (optional; Ibex's "slow" option).
    //
    // 33-cycle shift-and-add: cycle 0 loads the operand registers, the
    // following 32 cycles each add (multiplier LSB ? multiplicand : 0)
    // into the accumulator while shifting; the result is the
    // accumulator-plus-final-partial sum, written back when the cycle
    // counter reaches 32. The instruction is held at the pipeline head
    // (consume gated in ctl) while the counter runs.
    // ------------------------------------------------------------------
    Bus mul_sum;
    NetId mul_done = kInvalidId;
    if (cfg.enableMul) {
        BuilderScope scope(b, "mul");
        FwdReg cnt = makeReg(b, 6, 0, "cnt");
        FwdReg acc = makeReg(b, 32, 0, "acc");
        FwdReg mcand = makeReg(b, 32, 0, "mcand");
        FwdReg mplier = makeReg(b, 32, 0, "mplier");

        const NetId active = b.and2(head_valid, is_mul);
        const NetId starting = b.inv(b.reduceOr(cnt.q));
        mul_done = b.equal(cnt.q, b.constantBus(6, 32));

        const Bus partial = b.andB(mcand.q, replicate(mplier.q[0], 32));
        mul_sum = b.adder(acc.q, partial, b.constant(false));

        // Next state: load on the starting cycle, accumulate+shift
        // while running, idle (counter cleared) otherwise.
        const Bus zero6 = b.constantBus(6, 0);
        const Bus cnt_plus1 =
            b.adder(cnt.q, b.constantBus(6, 1), b.constant(false));
        b.connectBus(cnt.d,
                     b.muxB(active, zero6,
                            b.muxB(mul_done, cnt_plus1, zero6)));

        Bus mcand_shl(32);
        Bus mplier_shr(32);
        for (unsigned i = 0; i < 32; ++i) {
            mcand_shl[i] = i == 0 ? b.constant(false) : mcand.q[i - 1];
            mplier_shr[i] =
                i == 31 ? b.constant(false) : mplier.q[i + 1];
        }
        b.connectBus(acc.d,
                     b.muxB(active, acc.q,
                            b.muxB(starting, mul_sum,
                                   b.constantBus(32, 0))));
        b.connectBus(mcand.d,
                     b.muxB(active, mcand.q,
                            b.muxB(starting, mcand_shl, rs1_data)));
        b.connectBus(mplier.d,
                     b.muxB(active, mplier.q,
                            b.muxB(starting, mplier_shr, rs2_data)));
    }

    // ------------------------------------------------------------------
    // Control / writeback.
    // ------------------------------------------------------------------
    {
        BuilderScope scope(b, "ctl");
        // Branch taken, by funct3.
        const NetId taken = b.reduceOr({
            b.and2(f3dec[0], cmp_eq),
            b.and2(f3dec[1], b.inv(cmp_eq)),
            b.and2(f3dec[4], cmp_lt),
            b.and2(f3dec[5], b.inv(cmp_lt)),
            b.and2(f3dec[6], cmp_ltu),
            b.and2(f3dec[7], b.inv(cmp_ltu)),
        });
        const NetId do_branch = b.and3(head_valid, is_branch, taken);
        const NetId do_jump =
            b.and2(head_valid, b.or2(is_jal, is_jalr));
        b.connect(redirect, b.or2(do_branch, do_jump));

        Bus jalr_target = alu_result;
        jalr_target[0] = b.constant(false);
        b.connectBus(rtarget, b.muxB(is_jalr, btarget, jalr_target));

        NetId consume_v = b.and2(
            head_valid, b.inv(b.and2(is_load, b.inv(lsu_phase))));
        if (cfg.enableMul) {
            consume_v = b.and2(
                consume_v, b.inv(b.and2(is_mul, b.inv(mul_done))));
        }
        b.connect(consume, consume_v);

        const Bus pc4 =
            b.adder(head_pc, b.constantBus(32, 4), b.constant(false));
        const NetId is_jump = b.or2(is_jal, is_jalr);
        Bus wb = b.muxB(is_load,
                        b.muxB(is_jump, alu_result, pc4),
                        load_data);
        if (cfg.enableMul)
            wb = b.muxB(is_mul, wb, mul_sum);
        b.connectBus(rf_wdata, wb);
        NetId we_v = b.and3(head_valid, wr_en,
                            b.or2(b.inv(is_load), lsu_phase));
        if (cfg.enableMul)
            we_v = b.and2(we_v, b.or2(b.inv(is_mul), mul_done));
        b.connect(rf_we, we_v);
    }

    // Synthesis-style cleanups: sweep dead combinational slices, then
    // buffer high-fanout nets. Both passes invalidate raw ids, so all
    // bookkeeping below re-derives ids from names.
    nl.sweepDeadLogic();
    nl.insertFanoutBuffers();
    nl.finalize();

    haltedNetId = nl.cell(nl.findCell("mem")).outputs[64];

    // The register file storage flops, in creation order (register
    // major, bit minor — nothing else in the regfile scope has flops).
    const unsigned store_width = cfg.eccRegfile ? eccCodeWidth(32) : 32;
    const auto reg_flops = nl.flopsByPrefix("regfile/");
    davf_assert(reg_flops.size() == size_t{31} * store_width,
                "unexpected regfile flop count");
    regQ.assign(31, Bus(store_width));
    for (unsigned reg = 0; reg < 31; ++reg) {
        for (unsigned bit = 0; bit < store_width; ++bit) {
            const StateElem &elem =
                nl.stateElem(reg_flops[size_t{reg} * store_width + bit]);
            regQ[reg][bit] = nl.cell(elem.cell).outputs[0];
        }
    }

    registry = std::make_unique<StructureRegistry>(nl);
    registry->add("ALU", "alu/");
    registry->add("Decoder", "decoder/");
    registry->add("Regfile", "regfile/");
    registry->add("LSU", "lsu/");
    registry->add("Prefetch", "prefetch/");
    if (cfg.enableMul)
        registry->add("MUL", "mul/");
}

uint32_t
IbexMini::readRegister(const CycleSimulator &sim, unsigned index) const
{
    davf_assert(index < 32, "bad register index");
    if (index == 0)
        return 0;
    const Bus &q = regQ[index - 1];
    uint64_t code = 0;
    for (size_t i = 0; i < q.size(); ++i) {
        if (sim.value(q[i]))
            code |= uint64_t{1} << i;
    }
    if (cfg.eccRegfile)
        return static_cast<uint32_t>(eccCorrectSoft(code, 32));
    return static_cast<uint32_t>(code);
}

} // namespace davf
