/**
 * @file
 * Fault-trace dumper: replay one SDF injection on the IbexMini core and
 * write golden and faulty VCD waveforms of the affected state elements
 * (plus any requested nets) for side-by-side inspection in GTKWave.
 *
 * Usage:
 *   davf_trace [options]
 *     --benchmark NAME   workload (default libstrstr)
 *     --structure NAME   structure whose wires to scan (default ALU)
 *     --cycle N          injection cycle (default: golden middle)
 *     --d FRACTION       SDF duration as a fraction of the period
 *                        (default 0.6)
 *     --wire INDEX       wire index within the structure (default:
 *                        first wire with a non-empty error set)
 *     --tail N           cycles to dump after the injection (default 40)
 *     --out PREFIX       output files PREFIX.golden.vcd and
 *                        PREFIX.faulty.vcd (default davf_trace)
 *
 * The `attr` verb pretty-prints per-instruction attribution tables
 * journaled by an --attribution campaign (docs/ANALYSIS.md):
 *   davf_trace attr --checkpoint FILE
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "campaign/checkpoint.hh"
#include "core/vulnerability.hh"
#include "isa/assembler.hh"
#include "isa/benchmarks.hh"
#include "sim/vcd.hh"
#include "soc/ibex_mini.hh"
#include "soc/soc_workload.hh"
#include "util/logging.hh"

using namespace davf;

namespace {

/** `davf_trace attr`: dump the attribution tables in a journal. */
int
runAttr(int argc, char **argv)
{
    std::string path;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--checkpoint" && i + 1 < argc) {
            path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s attr --checkpoint FILE\n", argv[0]);
            return 2;
        }
    }
    if (path.empty()) {
        std::fprintf(stderr, "usage: %s attr --checkpoint FILE\n",
                     argv[0]);
        return 2;
    }

    const Result<Checkpoint> loaded = loadCheckpoint(path, nullptr);
    if (!loaded) {
        std::fprintf(stderr, "error: %s\n", loaded.error().what());
        return 1;
    }

    size_t tables = 0;
    for (const CheckpointCell &cell : loaded.value().cells) {
        if (cell.key.kind != "davf" || cell.failed
            || !cell.davf.attrValid) {
            continue;
        }
        ++tables;
        std::printf("%s %s d=%s — %zu instruction(s)\n",
                    cell.key.benchmark.c_str(),
                    cell.key.structure.c_str(), cell.key.delay.c_str(),
                    cell.davf.attribution.size());
        std::printf("  %-12s%-22s%12s%12s%12s\n", "pc", "instruction",
                    "injections", "delay-ace", "corrupted");
        for (const DelayAvfResult::AttrRow &row : cell.davf.attribution) {
            std::printf("  0x%08llx  %-22s%12llu%12llu%12llu\n",
                        static_cast<unsigned long long>(row.pc),
                        row.mnemonic.c_str(),
                        static_cast<unsigned long long>(row.injections),
                        static_cast<unsigned long long>(row.delayAce),
                        static_cast<unsigned long long>(
                            row.firstCorruptions));
            for (const auto &[dest, count] : row.destinations) {
                std::printf("  %-12s  -> %s: %llu\n", "", dest.c_str(),
                            static_cast<unsigned long long>(count));
            }
        }
    }
    if (tables == 0) {
        std::printf("no attribution tables in '%s' (was the campaign "
                    "run with --attribution?)\n", path.c_str());
    }
    return 0;
}

int
runTool(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "attr") == 0)
        return runAttr(argc, argv);
    std::string benchmark = "libstrstr";
    std::string structure_name = "ALU";
    std::string prefix = "davf_trace";
    uint64_t cycle = 0;
    double fraction = 0.6;
    long wire_index = -1;
    uint64_t tail = 40;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto need = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--benchmark")
            benchmark = need();
        else if (arg == "--structure")
            structure_name = need();
        else if (arg == "--cycle")
            cycle = std::strtoull(need(), nullptr, 10);
        else if (arg == "--d")
            fraction = std::atof(need());
        else if (arg == "--wire")
            wire_index = std::atol(need());
        else if (arg == "--tail")
            tail = std::strtoull(need(), nullptr, 10);
        else if (arg == "--out")
            prefix = need();
        else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            return 2;
        }
    }

    const BenchmarkProgram &program = beebsBenchmark(benchmark);
    IbexMini soc({}, assemble(program.source));
    SocWorkload workload(soc);
    EngineOptions options;
    options.periodMode =
        EngineOptions::PeriodMode::ObservedMaxPlusMargin;
    VulnerabilityEngine engine(soc.netlist(),
                               CellLibrary::defaultLibrary(), workload,
                               options);
    const Structure *structure =
        soc.structures().find(structure_name);
    if (!structure) {
        std::fprintf(stderr, "unknown structure %s\n",
                     structure_name.c_str());
        return 2;
    }
    if (cycle == 0)
        cycle = engine.goldenCycles() / 2;
    const double d = fraction * engine.clockPeriod();

    // Pick the injection: requested wire, or scan for the first one
    // with a non-empty dynamically reachable set.
    std::vector<CycleSimulator::Force> errors;
    WireId wire = kInvalidId;
    if (wire_index >= 0) {
        wire = structure->wires.at(static_cast<size_t>(wire_index));
        errors = engine.dynamicErrors(wire, cycle, d);
    } else {
        for (size_t i = 0; i < structure->wires.size(); ++i) {
            errors = engine.dynamicErrors(structure->wires[i], cycle, d);
            if (!errors.empty()) {
                wire = structure->wires[i];
                break;
            }
        }
        if (wire == kInvalidId) {
            std::fprintf(stderr,
                         "no erroneous injection found in %s at cycle "
                         "%llu, d=%.2f — try another cycle/d\n",
                         structure_name.c_str(),
                         static_cast<unsigned long long>(cycle),
                         fraction);
            return 1;
        }
    }

    std::printf("injection: wire '%s', cycle %llu, d = %.1f ps "
                "(%.0f%% of %.1f ps)\n",
                soc.netlist().wireName(wire).c_str(),
                static_cast<unsigned long long>(cycle), d,
                100 * fraction, engine.clockPeriod());
    std::printf("dynamically reachable set (%zu):\n", errors.size());
    for (const auto &[elem, value] : errors) {
        std::printf("  %s <- %d\n",
                    soc.netlist().stateElemName(elem).c_str(),
                    value ? 1 : 0);
    }
    const FailureKind verdict = engine.groupVerdict(errors, cycle);
    std::printf("verdict: %s\n",
                verdict == FailureKind::None ? "masked (not DelayACE)"
                : verdict == FailureKind::Sdc
                    ? "silent data corruption"
                    : "detected unrecoverable error");

    // Nets to trace: the wronged state elements' cells' outputs plus
    // the faulted wire's net.
    std::vector<NetId> nets;
    nets.push_back(soc.netlist().wire(wire).net);
    for (const auto &[elem, value] : errors) {
        const StateElem &state_elem = soc.netlist().stateElem(elem);
        const Cell &cell = soc.netlist().cell(state_elem.cell);
        for (NetId out : cell.outputs)
            nets.push_back(out);
        if (state_elem.kind == StateElemKind::BehavInput)
            nets.push_back(cell.inputs[state_elem.pin]);
    }

    // Golden trace.
    {
        CycleSimulator sim(soc.netlist());
        VcdWriter vcd(soc.netlist(), nets);
        for (uint64_t i = 0; i <= cycle + tail; ++i) {
            vcd.sample(sim);
            sim.step();
        }
        vcd.writeTo(prefix + ".golden.vcd", "golden");
    }
    // Faulty trace: identical prefix, forced errors at the edge.
    {
        CycleSimulator sim(soc.netlist());
        VcdWriter vcd(soc.netlist(), nets);
        for (uint64_t i = 0; i < cycle; ++i) {
            vcd.sample(sim);
            sim.step();
        }
        vcd.sample(sim);
        sim.step(errors);
        for (uint64_t i = 0; i < tail; ++i) {
            vcd.sample(sim);
            sim.step();
        }
        vcd.writeTo(prefix + ".faulty.vcd", "faulty");
    }
    std::printf("wrote %s.golden.vcd and %s.faulty.vcd (%zu nets)\n",
                prefix.c_str(), prefix.c_str(), nets.size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return guardedMain([&] { return runTool(argc, argv); });
}
