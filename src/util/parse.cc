#include "parse.hh"

#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "util/logging.hh"

namespace davf {

uint64_t
parseU64Strict(const std::string &text, const std::string &what)
{
    if (text.empty() || text[0] < '0' || text[0] > '9') {
        davf_throw(ErrorKind::BadArgument, what, " expects an unsigned "
                   "integer, got '", text, "'");
    }
    errno = 0;
    char *end = nullptr;
    const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
    if (end != text.c_str() + text.size()) {
        davf_throw(ErrorKind::BadArgument, what, ": trailing characters "
                   "after number in '", text, "'");
    }
    if (errno == ERANGE) {
        davf_throw(ErrorKind::BadArgument, what, ": '", text,
                   "' overflows a 64-bit unsigned integer");
    }
    return static_cast<uint64_t>(value);
}

uint64_t
parseU64InRange(const std::string &text, const std::string &what,
                uint64_t lo, uint64_t hi)
{
    const uint64_t value = parseU64Strict(text, what);
    if (value < lo || value > hi) {
        davf_throw(ErrorKind::BadArgument, what, ": ", value,
                   " is outside the valid range [", lo, ", ", hi, "]");
    }
    return value;
}

double
parseDoubleStrict(const std::string &text, const std::string &what)
{
    if (text.empty() || text[0] == ' ' || text[0] == '\t') {
        davf_throw(ErrorKind::BadArgument, what,
                   " expects a number, got '", text, "'");
    }
    errno = 0;
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size()) {
        davf_throw(ErrorKind::BadArgument, what, ": trailing characters "
                   "after number in '", text, "'");
    }
    if (errno == ERANGE || !std::isfinite(value)) {
        davf_throw(ErrorKind::BadArgument, what, ": '", text,
                   "' is not a finite number");
    }
    return value;
}

} // namespace davf
