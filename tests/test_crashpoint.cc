/**
 * @file
 * Tests for the crash-point injection layer (util/crashpoint.hh) and
 * the recovery properties it exists to prove:
 *
 *  - spec parsing (lenient: malformed input arms nothing);
 *  - one-shot firing, throw/enospc as catchable DavfError{Io};
 *  - atomic-file damage contracts: enospc leaves the old contents,
 *    torn publishes a deterministic truncated prefix, garble a
 *    deterministic bit-flip (gtest death tests — the point SIGKILLs);
 *  - result-store publish failures are non-fatal and counted, damaged
 *    records are misses that get repaired (and the repair unlink is
 *    itself crash-tolerant);
 *  - quarantine records: save-point kills never leave a torn file and
 *    torn files never break loading;
 *  - store fsck/compact: classification of every damage kind, repair,
 *    idempotence, and kill-mid-repair rerunnability;
 *  - the recovery matrix: every registered crash point x
 *    {kill, torn, enospc} against a checkpointed campaign, a store
 *    round-trip, and compact — after recovery the surviving artifacts
 *    are byte-identical to an undisturbed run.
 *
 * Kill-action matrix cases re-execute this binary (--crash-child=...)
 * so the SIGKILL lands in a scratch process, which is why this test
 * has its own main() instead of linking gtest_main.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include <unistd.h>

#include "src/campaign/campaign.hh"
#include "src/campaign/checkpoint.hh"
#include "src/campaign/supervisor.hh"
#include "src/service/result_store.hh"
#include "src/service/store_fsck.hh"
#include "src/util/atomic_file.hh"
#include "src/util/crashpoint.hh"
#include "src/util/error.hh"
#include "src/util/subprocess.hh"
#include "tests/helpers.hh"

namespace davf {
namespace {

namespace fs = std::filesystem;

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "davf_crash_"
        + std::to_string(::getpid()) + "_" + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream file(path, std::ios::binary);
    EXPECT_TRUE(static_cast<bool>(file)) << path;
    std::ostringstream os;
    os << file.rdbuf();
    return os.str();
}

/** Raw (non-atomic) write, for crafting damaged fixtures. */
void
writeRaw(const std::string &path, const std::string &contents)
{
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(static_cast<bool>(file)) << path;
    file << contents;
    ASSERT_TRUE(static_cast<bool>(file)) << path;
}

/** Arms a spec for the enclosing scope; disarms on exit. */
struct ArmGuard
{
    explicit ArmGuard(const std::string &spec)
    {
        crashpoint::arm(crashpoint::parseSpec(spec.c_str()));
    }
    ~ArmGuard() { crashpoint::disarm(); }
};

// ------------------------------------------------------------ spec parsing

TEST(CrashSpec, ParsesPointActionAndHitCount)
{
    crashpoint::Spec spec =
        crashpoint::parseSpec("checkpoint.save=kill");
    EXPECT_EQ(spec.point, "checkpoint.save");
    EXPECT_EQ(spec.hitCount, 1u);
    EXPECT_EQ(spec.action, crashpoint::Action::Kill);

    spec = crashpoint::parseSpec("atomic_file.write:7=torn");
    EXPECT_EQ(spec.point, "atomic_file.write");
    EXPECT_EQ(spec.hitCount, 7u);
    EXPECT_EQ(spec.action, crashpoint::Action::Torn);

    spec = crashpoint::parseSpec("store.publish=enospc");
    EXPECT_EQ(spec.action, crashpoint::Action::Enospc);
    spec = crashpoint::parseSpec("store.publish=throw");
    EXPECT_EQ(spec.action, crashpoint::Action::Throw);
    spec = crashpoint::parseSpec("store.publish=garble");
    EXPECT_EQ(spec.action, crashpoint::Action::Garble);
}

TEST(CrashSpec, MalformedInputArmsNothing)
{
    // Like DAVF_TEST_NETFAULT: the hook must never break a real run,
    // so everything malformed degrades to "unarmed".
    const char *bad[] = {
        nullptr,
        "",
        "checkpoint.save",        // no action
        "=kill",                  // no point
        "checkpoint.save=",       // empty action
        "checkpoint.save=explode",
        "checkpoint.save:0=kill", // hit counts are 1-based
        "checkpoint.save:x=kill",
        "no.such.point=kill",     // unknown name warns, arms nothing
    };
    for (const char *text : bad) {
        const crashpoint::Spec spec = crashpoint::parseSpec(text);
        EXPECT_EQ(spec.action, crashpoint::Action::None)
            << (text ? text : "<null>");
        EXPECT_TRUE(spec.point.empty()) << (text ? text : "<null>");
    }
}

TEST(CrashSpec, KnownPointsAreSortedAndRoundTrip)
{
    const std::vector<std::string> &points = crashpoint::knownPoints();
    ASSERT_FALSE(points.empty());
    EXPECT_TRUE(std::is_sorted(points.begin(), points.end()));
    // Every registered point must parse back as a valid spec target.
    for (const std::string &point : points) {
        const crashpoint::Spec spec =
            crashpoint::parseSpec((point + "=kill").c_str());
        EXPECT_EQ(spec.point, point);
    }
}

TEST(CrashSpec, DamageOffsetIsMidPayload)
{
    EXPECT_EQ(crashpoint::damageOffset(0), 0u);
    EXPECT_EQ(crashpoint::damageOffset(1), 0u);
    for (size_t size : {2u, 3u, 100u, 4097u}) {
        const size_t offset = crashpoint::damageOffset(size);
        EXPECT_GT(offset, 0u) << size;
        EXPECT_LT(offset, size) << size;
        // Deterministic: the recovery matrix depends on it.
        EXPECT_EQ(offset, crashpoint::damageOffset(size)) << size;
    }
}

// ------------------------------------------------------- one-shot semantics

TEST(CrashPointFire, ThrowIsCatchableAndFiresExactlyOnce)
{
    const std::string path = tempPath("oneshot.ckpt");
    Checkpoint checkpoint;
    checkpoint.configHash = "feedc0de";

    ArmGuard armed("checkpoint.save=throw");
    try {
        saveCheckpoint(path, checkpoint);
        FAIL() << "armed point did not fire";
    } catch (const DavfError &error) {
        EXPECT_EQ(error.kind(), ErrorKind::Io);
        EXPECT_NE(std::string(error.what()).find("checkpoint.save"),
                  std::string::npos)
            << error.what();
    }
    // Latched: the same point never fires twice in one process.
    saveCheckpoint(path, checkpoint);
    EXPECT_TRUE(loadCheckpoint(path).ok());
    std::remove(path.c_str());
}

TEST(CrashPointFire, HitCountDelaysTheFire)
{
    const std::string path = tempPath("hitcount.ckpt");
    Checkpoint checkpoint;
    checkpoint.configHash = "feedc0de";

    ArmGuard armed("checkpoint.save:3=throw");
    saveCheckpoint(path, checkpoint); // hit 1
    saveCheckpoint(path, checkpoint); // hit 2
    EXPECT_THROW(saveCheckpoint(path, checkpoint), DavfError); // hit 3
    saveCheckpoint(path, checkpoint); // latched off again
    std::remove(path.c_str());
}

// -------------------------------------------------- atomic-file damage modes

TEST(AtomicFileCrash, EnospcLeavesOldContentsAndNoTemporary)
{
    const std::string path = tempPath("enospc.txt");
    writeFileAtomic(path, "old contents");

    ArmGuard armed("atomic_file.write=enospc");
    try {
        writeFileAtomic(path, "new contents that never land");
        FAIL() << "enospc did not fire";
    } catch (const DavfError &error) {
        EXPECT_EQ(error.kind(), ErrorKind::Io);
        EXPECT_NE(std::string(error.what()).find("no space left"),
                  std::string::npos)
            << error.what();
    }
    // The reader-visible file is untouched and no temporary leaks.
    EXPECT_EQ(slurp(path), "old contents");
    std::ifstream tmp(path + ".tmp." + std::to_string(::getpid()));
    EXPECT_FALSE(static_cast<bool>(tmp));

    // Retry (point latched) succeeds.
    writeFileAtomic(path, "new contents");
    EXPECT_EQ(slurp(path), "new contents");
    std::remove(path.c_str());
}

TEST(AtomicFileCrash, TornPublishesExactlyTheTruncatedPrefix)
{
    const std::string path = tempPath("torn.txt");
    const std::string payload = "0123456789abcdefghij";
    writeFileAtomic(path, "old contents");

    ArmGuard armed("atomic_file.write=torn");
    EXPECT_EXIT(writeFileAtomic(path, payload),
                ::testing::KilledBySignal(SIGKILL),
                "crashpoint: killing at 'atomic_file.write'");

    // The damage is published (the whole point: it must be
    // distinguishable from a clean pre-write kill) and deterministic.
    EXPECT_EQ(slurp(path),
              payload.substr(0, crashpoint::damageOffset(payload.size())));
    std::remove(path.c_str());
}

TEST(AtomicFileCrash, GarblePublishesASingleFlippedByte)
{
    const std::string path = tempPath("garble.txt");
    const std::string payload = "0123456789abcdefghij";

    ArmGuard armed("atomic_file.write=garble");
    EXPECT_EXIT(writeFileAtomic(path, payload),
                ::testing::KilledBySignal(SIGKILL),
                "crashpoint: killing at 'atomic_file.write'");

    std::string expected = payload;
    expected[crashpoint::damageOffset(payload.size())] ^= 0x40;
    EXPECT_EQ(slurp(path), expected);
    std::remove(path.c_str());
}

TEST(AtomicFileCrash, KillBeforeRenameNeverExposesThePartialFile)
{
    const std::string path = tempPath("prerename.txt");
    writeFileAtomic(path, "old contents");

    ArmGuard armed("atomic_file.pre_rename=kill");
    EXPECT_EXIT(writeFileAtomic(path, "never published"),
                ::testing::KilledBySignal(SIGKILL),
                "crashpoint: killing at 'atomic_file.pre_rename'");

    // Readers still see the old contents; the stale temporary is the
    // orphan that fsck cleans up.
    EXPECT_EQ(slurp(path), "old contents");
    std::remove(path.c_str());
    std::error_code ec;
    for (const fs::directory_entry &entry :
         fs::directory_iterator(::testing::TempDir(), ec)) {
        const std::string name = entry.path().filename().string();
        if (name.find("prerename.txt.tmp.") != std::string::npos)
            fs::remove(entry.path(), ec);
    }
}

// ----------------------------------------------------------- result store

TEST(StoreCrash, PublishFailureIsNonFatalAndCounted)
{
    const std::string dir = tempPath("store_pubfail");
    fs::remove_all(dir);
    service::ResultStore store({dir, 8, service::StoreFormat::Legacy});

    ArmGuard armed("store.publish=throw");
    store.store("k1", "payload-1"); // must not throw
    service::StoreStats stats = store.stats();
    EXPECT_EQ(stats.writeFailures, 1u);
    EXPECT_EQ(stats.writes, 0u);
    // The memory tier still serves the result...
    EXPECT_EQ(store.lookup("k1").value_or(""), "payload-1");
    // ...but nothing reached disk.
    EXPECT_FALSE(fs::exists(store.recordPath("k1")));

    // The next publish (point latched) lands on disk.
    store.store("k2", "payload-2");
    stats = store.stats();
    EXPECT_EQ(stats.writes, 1u);
    EXPECT_TRUE(fs::exists(store.recordPath("k2")));
    fs::remove_all(dir);
}

TEST(StoreCrash, EnospcMidRecordIsAMissNextTimeNotACrash)
{
    const std::string dir = tempPath("store_enospc");
    fs::remove_all(dir);
    {
        service::ResultStore store({dir, 8, service::StoreFormat::Legacy});
        ArmGuard armed("atomic_file.write=enospc");
        store.store("k1", "payload-1"); // swallowed, counted
        EXPECT_EQ(store.stats().writeFailures, 1u);
    }
    // A fresh store (cold memory tier) sees a plain miss, then the
    // rewrite repairs the record.
    service::ResultStore store({dir, 8, service::StoreFormat::Legacy});
    EXPECT_FALSE(store.lookup("k1").has_value());
    store.store("k1", "payload-1");
    EXPECT_EQ(store.stats().writes, 1u);
    {
        service::ResultStore reread({dir, 8, service::StoreFormat::Legacy});
        EXPECT_EQ(reread.lookup("k1").value_or(""), "payload-1");
    }
    fs::remove_all(dir);
}

TEST(StoreCrash, GarbledRecordIsAMissAndGetsUnlinked)
{
    const std::string dir = tempPath("store_garble");
    fs::remove_all(dir);
    std::string path;
    {
        service::ResultStore store({dir, 8, service::StoreFormat::Legacy});
        store.store("k1", "payload-1");
        path = store.recordPath("k1");
    }
    // Flip one payload byte in place: the checksum must catch it.
    std::string text = slurp(path);
    const size_t pos = text.find("payload-1");
    ASSERT_NE(pos, std::string::npos);
    text[pos + 3] ^= 0x20;
    writeRaw(path, text);

    service::ResultStore store({dir, 8, service::StoreFormat::Legacy});
    EXPECT_FALSE(store.lookup("k1").has_value());
    const service::StoreStats stats = store.stats();
    EXPECT_EQ(stats.corruptRecords, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.repairUnlinks, 1u);
    EXPECT_FALSE(fs::exists(path)) << "damaged record must be removed";
    fs::remove_all(dir);
}

TEST(StoreCrash, RepairUnlinkFailureIsStillJustAMiss)
{
    const std::string dir = tempPath("store_repairfail");
    fs::remove_all(dir);
    std::string path;
    {
        service::ResultStore store({dir, 8, service::StoreFormat::Legacy});
        store.store("k1", "payload-1");
        path = store.recordPath("k1");
    }
    writeRaw(path, "davf-store v2\nkey k1\n"); // torn

    service::ResultStore store({dir, 8, service::StoreFormat::Legacy});
    ArmGuard armed("store.repair_unlink=throw");
    EXPECT_FALSE(store.lookup("k1").has_value()); // must not throw
    EXPECT_EQ(store.stats().corruptRecords, 1u);
    EXPECT_EQ(store.stats().repairUnlinks, 0u);
    EXPECT_TRUE(fs::exists(path)) << "unlink was injected away";

    // Latched: the next lookup completes the repair.
    EXPECT_FALSE(store.lookup("k1").has_value());
    EXPECT_EQ(store.stats().repairUnlinks, 1u);
    EXPECT_FALSE(fs::exists(path));
    fs::remove_all(dir);
}

// ------------------------------------------------------- quarantine records

QuarantineRecord
sampleQuarantine(double delay)
{
    QuarantineRecord record;
    record.configHash = "feedc0de";
    record.benchmark = "md5";
    record.structure = "ALU";
    record.delayFraction = delay;
    record.cycle = 42;
    record.wireIndex = 3;
    record.wire = 77;
    record.seed = 5;
    record.reason = "killed by signal 6 (Aborted)";
    return record;
}

TEST(QuarantineCrash, KillAtSavePointNeverLeavesATornRecord)
{
    const std::string dir = tempPath("qdir_kill");
    fs::remove_all(dir);
    saveQuarantineRecord(dir, sampleQuarantine(0.5));

    ArmGuard armed("quarantine.save=kill");
    EXPECT_EXIT(saveQuarantineRecord(dir, sampleQuarantine(0.7)),
                ::testing::KilledBySignal(SIGKILL),
                "crashpoint: killing at 'quarantine.save'");

    // The pre-existing record survives; the killed one is wholly
    // absent (the point fires before any bytes move).
    const std::vector<QuarantineRecord> loaded =
        loadQuarantineRecords(dir);
    ASSERT_EQ(loaded.size(), 1u);
    EXPECT_EQ(loaded[0], sampleQuarantine(0.5));
    fs::remove_all(dir);
}

TEST(QuarantineCrash, SaveFailureThrowsIoAndLeavesDirLoadable)
{
    const std::string dir = tempPath("qdir_throw");
    fs::remove_all(dir);
    saveQuarantineRecord(dir, sampleQuarantine(0.5));

    {
        ArmGuard armed("quarantine.save=enospc");
        EXPECT_THROW(saveQuarantineRecord(dir, sampleQuarantine(0.7)),
                     DavfError);
    }
    EXPECT_EQ(loadQuarantineRecords(dir).size(), 1u);
    saveQuarantineRecord(dir, sampleQuarantine(0.7));
    EXPECT_EQ(loadQuarantineRecords(dir).size(), 2u);
    fs::remove_all(dir);
}

TEST(QuarantineCrash, TornRecordFileIsSkippedNotFatal)
{
    const std::string dir = tempPath("qdir_torn");
    fs::remove_all(dir);
    saveQuarantineRecord(dir, sampleQuarantine(0.5));

    // A torn copy and an empty file, the shapes a crashed writer (on a
    // filesystem without the rename guarantee) can leave behind.
    const std::string line =
        serializeQuarantineRecord(sampleQuarantine(0.7));
    writeRaw(dir + "/torn.q", line.substr(0, line.size() / 2));
    writeRaw(dir + "/empty.q", "");

    const std::vector<QuarantineRecord> loaded =
        loadQuarantineRecords(dir);
    ASSERT_EQ(loaded.size(), 1u) << "damaged records must be skipped";
    EXPECT_EQ(loaded[0], sampleQuarantine(0.5));
    fs::remove_all(dir);
}

// ---------------------------------------------------------- fsck / compact

/**
 * A store directory with one of everything:
 *  - valid records for "alpha" and "gamma";
 *  - a misplaced (wrong file name) record for "beta";
 *  - a misplaced duplicate of "gamma" (its canonical slot is taken);
 *  - a torn record, a garbled record, an orphan tmp, a foreign file.
 */
void
makeDamagedStore(const std::string &dir)
{
    using service::ResultStore;
    fs::remove_all(dir);
    fs::create_directories(dir);
    writeRaw(dir + "/" + ResultStore::recordFileName("alpha"),
             ResultStore::serializeRecord("alpha", "p-alpha"));
    writeRaw(dir + "/" + ResultStore::recordFileName("gamma"),
             ResultStore::serializeRecord("gamma", "p-gamma"));
    writeRaw(dir + "/misplaced-beta.rec",
             ResultStore::serializeRecord("beta", "p-beta"));
    writeRaw(dir + "/old-gamma.rec",
             ResultStore::serializeRecord("gamma", "p-gamma-stale"));
    const std::string torn =
        ResultStore::serializeRecord("delta", "p-delta");
    writeRaw(dir + "/torn-delta.rec", torn.substr(0, torn.size() - 9));
    std::string garbled =
        ResultStore::serializeRecord("epsilon", "p-epsilon");
    const size_t pos = garbled.find("p-epsilon");
    garbled[pos + 4] ^= 0x01;
    writeRaw(dir + "/" + ResultStore::recordFileName("epsilon"),
             garbled);
    writeRaw(dir + "/r-dead.rec.tmp.4242", "half a record");
    writeRaw(dir + "/README", "not a record");
}

TEST(StoreFsck, ClassifiesEveryDamageKind)
{
    const std::string dir = tempPath("fsck_classify");
    makeDamagedStore(dir);

    const service::FsckReport report =
        service::fsckStore(dir, service::FsckOptions{});
    EXPECT_EQ(report.valid, 2u);
    EXPECT_EQ(report.misplaced, 2u);
    EXPECT_EQ(report.torn, 1u);
    EXPECT_EQ(report.garbled, 1u);
    EXPECT_EQ(report.orphanTmps, 1u);
    EXPECT_EQ(report.foreign, 1u);
    EXPECT_FALSE(report.clean());
    EXPECT_EQ(report.quarantined, 0u) << "fsck without --repair reads only";

    // The per-entry classification names the right files.
    std::map<std::string, service::StoreEntryKind> kinds;
    for (const service::StoreEntry &entry : report.entries)
        kinds[entry.name] = entry.kind;
    EXPECT_EQ(kinds["torn-delta.rec"], service::StoreEntryKind::Torn);
    EXPECT_EQ(kinds["misplaced-beta.rec"],
              service::StoreEntryKind::Misplaced);
    EXPECT_EQ(kinds["r-dead.rec.tmp.4242"],
              service::StoreEntryKind::OrphanTmp);
    EXPECT_EQ(kinds["README"], service::StoreEntryKind::Foreign);
    fs::remove_all(dir);
}

TEST(StoreFsck, RepairQuarantinesDamageAndIsIdempotent)
{
    const std::string dir = tempPath("fsck_repair");
    makeDamagedStore(dir);

    service::FsckOptions repair;
    repair.repair = true;
    const service::FsckReport report = service::fsckStore(dir, repair);
    EXPECT_EQ(report.quarantined, 2u); // torn + garbled
    EXPECT_EQ(report.removedTmps, 1u);
    EXPECT_TRUE(report.clean());

    // Damage moved, not destroyed: the evidence is in quarantine/.
    EXPECT_TRUE(fs::exists(dir + "/" + service::kFsckQuarantineDir
                           + "/torn-delta.rec"));
    EXPECT_FALSE(fs::exists(dir + "/r-dead.rec.tmp.4242"));

    // A second pass finds nothing left to repair.
    const service::FsckReport again = service::fsckStore(dir, repair);
    EXPECT_EQ(again.torn + again.garbled, 0u);
    EXPECT_EQ(again.orphanTmps, 0u);
    EXPECT_TRUE(again.clean());
    // Valid and misplaced records were untouched (fsck never compacts).
    EXPECT_EQ(again.valid, 2u);
    EXPECT_EQ(again.misplaced, 2u);
    fs::remove_all(dir);
}

TEST(StoreFsck, CompactRehomesMisplacedAndDropsDuplicateLosers)
{
    using service::ResultStore;
    const std::string dir = tempPath("fsck_compact");
    makeDamagedStore(dir);

    const service::FsckReport report = service::compactStore(dir);
    EXPECT_EQ(report.rehomed, 1u);         // beta
    EXPECT_EQ(report.duplicateLosers, 1u); // old-gamma
    EXPECT_TRUE(report.clean());

    // Every key the store held is still served, from canonical names.
    service::ResultStore store({dir, 8, service::StoreFormat::Legacy});
    EXPECT_EQ(store.lookup("alpha").value_or(""), "p-alpha");
    EXPECT_EQ(store.lookup("beta").value_or(""), "p-beta");
    EXPECT_EQ(store.lookup("gamma").value_or(""), "p-gamma");
    EXPECT_FALSE(fs::exists(dir + "/misplaced-beta.rec"));
    EXPECT_FALSE(fs::exists(dir + "/old-gamma.rec"));

    // Converged: a second compact is a no-op.
    const service::FsckReport again = service::compactStore(dir);
    EXPECT_EQ(again.rehomed + again.duplicateLosers, 0u);
    EXPECT_EQ(again.valid, 3u);
    fs::remove_all(dir);
}

TEST(StoreFsck, KillMidRepairIsRerunnable)
{
    const std::string dir = tempPath("fsck_killrepair");
    makeDamagedStore(dir);

    service::FsckOptions repair;
    repair.repair = true;
    {
        // Die between the first and second repair action.
        ArmGuard armed("fsck.repair:2=kill");
        EXPECT_EXIT((void)service::fsckStore(dir, repair),
                    ::testing::KilledBySignal(SIGKILL),
                    "crashpoint: killing at 'fsck.repair'");
    }
    // The rerun finishes what the killed run started.
    const service::FsckReport report = service::fsckStore(dir, repair);
    EXPECT_TRUE(report.clean());
    EXPECT_EQ(service::fsckStore(dir, service::FsckOptions{}).torn, 0u);
    fs::remove_all(dir);
}

TEST(StoreFsck, KillMidCompactLosesNoKeys)
{
    const std::string dir = tempPath("fsck_killcompact");
    makeDamagedStore(dir);

    {
        ArmGuard armed("compact.rewrite:1=kill");
        EXPECT_EXIT((void)service::compactStore(dir),
                    ::testing::KilledBySignal(SIGKILL),
                    "crashpoint: killing at 'compact.rewrite'");
    }
    const service::FsckReport report = service::compactStore(dir);
    EXPECT_TRUE(report.clean());
    service::ResultStore store({dir, 8, service::StoreFormat::Legacy});
    EXPECT_EQ(store.lookup("alpha").value_or(""), "p-alpha");
    EXPECT_EQ(store.lookup("beta").value_or(""), "p-beta");
    EXPECT_EQ(store.lookup("gamma").value_or(""), "p-gamma");
    fs::remove_all(dir);
}

// --------------------------------------------------------- checkpoint files

TEST(CheckpointCrash, GarbledJournalIsRefusedStrictAndLenient)
{
    // Torn tails are recoverable (the lenient loader drops them); a
    // garbled byte mid-journal is corruption and must be refused, so a
    // resume never silently adopts damaged aggregates.
    Checkpoint checkpoint;
    checkpoint.configHash = "feedc0de";
    CheckpointCell cell;
    cell.key = {"davf", "md5", "ALU", canonicalDelay(0.5)};
    cell.davf.delayAvf = 0.25;
    checkpoint.cells.push_back(cell);
    std::string text = serializeCheckpoint(checkpoint);

    const size_t pos = text.find("cell davf");
    ASSERT_NE(pos, std::string::npos);
    text[pos] = 'x';
    EXPECT_FALSE(parseCheckpoint(text).ok());
    CheckpointLoadStats stats;
    EXPECT_FALSE(parseCheckpoint(text, &stats).ok());
}

// --------------------------------------------------------- recovery matrix

/** The campaign fixture every matrix child rebuilds identically. */
struct MatrixFixture
{
    test::RandomCircuit circuit;
    std::unique_ptr<VulnerabilityEngine> engine;
    std::unique_ptr<StructureRegistry> registry;

    MatrixFixture() : circuit(test::makeRandomCircuit(7, 6, 30, 10))
    {
        engine = std::make_unique<VulnerabilityEngine>(
            *circuit.netlist, CellLibrary::defaultLibrary(),
            *circuit.workload);
        registry = std::make_unique<StructureRegistry>(*circuit.netlist);
        registry->add("Rnd", "rnd/");
    }

    CampaignOptions options() const
    {
        CampaignOptions opts;
        opts.benchmark = "rndtrace";
        opts.structures = {"Rnd"};
        opts.delays = {0.35, 0.7};
        opts.runSavf = true;
        opts.sampling.maxInjectionCycles = 3;
        opts.sampling.maxWires = 16;
        opts.sampling.maxFlops = 6;
        opts.sampling.seed = 9;
        opts.sampling.threads = 1;
        return opts;
    }
};

/** Keys/payloads the store matrix child publishes. */
std::vector<std::pair<std::string, std::string>>
matrixStoreRecords()
{
    std::vector<std::pair<std::string, std::string>> records;
    for (int i = 0; i < 4; ++i) {
        records.emplace_back("key-" + std::to_string(i),
                             "0x1.8p-" + std::to_string(i + 1)
                                 + " payload " + std::to_string(i));
    }
    return records;
}

/** Spawn this binary as a matrix child; returns its exit status. */
ExitStatus
runChild(const std::vector<std::string> &args)
{
    Subprocess child;
    std::vector<std::string> argv = {Subprocess::selfExePath()};
    argv.insert(argv.end(), args.begin(), args.end());
    child.spawn(argv);
    // The children talk only via the filesystem and their exit status.
    child.closeWrite();
    return child.wait();
}

TEST(CrashMatrix, CampaignRecoversByteIdenticalFromEveryPoint)
{
    const std::string ref_ckpt = tempPath("matrix_ref.ckpt");
    const std::string ref_csv = tempPath("matrix_ref.csv");

    // The undisturbed reference, produced by the same child code path.
    ExitStatus ref = runChild({"--crash-child=campaign",
                               "--ckpt=" + ref_ckpt,
                               "--csv=" + ref_csv});
    ASSERT_TRUE(ref.exited && ref.code == 0) << ref.describe();
    const std::string ref_journal = slurp(ref_ckpt);
    const std::string ref_report = slurp(ref_csv);
    ASSERT_FALSE(ref_journal.empty());
    ASSERT_FALSE(ref_report.empty());

    // Every registered point x the ISSUE's action set. Points that a
    // plain checkpointed campaign never reaches must be harmless to
    // arm: the run completes undisturbed. Points it does reach must be
    // survivable: after recovery, the journal and CSV are
    // byte-identical to the reference.
    for (const std::string &point : crashpoint::knownPoints()) {
        for (const char *action : {"kill", "torn", "enospc"}) {
            SCOPED_TRACE(point + "=" + action);
            const std::string tag =
                point + "." + action;
            const std::string ckpt = tempPath("m_" + tag + ".ckpt");
            const std::string csv = tempPath("m_" + tag + ".csv");
            std::remove(ckpt.c_str());
            std::remove(csv.c_str());

            ExitStatus hit = runChild({"--crash-child=campaign",
                                       "--spec=" + point + "=" + action,
                                       "--ckpt=" + ckpt,
                                       "--csv=" + csv});
            if (!(hit.exited && hit.code == 0)) {
                // The point fired fatally; a fresh process must
                // recover from whatever the crash left behind.
                std::vector<std::string> recover = {
                    "--crash-child=campaign", "--ckpt=" + ckpt,
                    "--csv=" + csv};
                if (fs::exists(ckpt))
                    recover.push_back("--resume");
                const ExitStatus status = runChild(recover);
                EXPECT_TRUE(status.exited && status.code == 0)
                    << status.describe();
            }
            EXPECT_EQ(slurp(ckpt), ref_journal);
            EXPECT_EQ(slurp(csv), ref_report);
            std::remove(ckpt.c_str());
            std::remove(csv.c_str());
        }
    }
    std::remove(ref_ckpt.c_str());
    std::remove(ref_csv.c_str());
}

TEST(CrashMatrix, LateHitCountCrashesMidSweepAndStillRecovers)
{
    const std::string ref_ckpt = tempPath("late_ref.ckpt");
    const std::string ref_csv = tempPath("late_ref.csv");
    ExitStatus ref = runChild({"--crash-child=campaign",
                               "--ckpt=" + ref_ckpt,
                               "--csv=" + ref_csv});
    ASSERT_TRUE(ref.exited && ref.code == 0) << ref.describe();

    // Crashes landing mid-sweep (not on the first save) leave a
    // journal with adopted cells plus partial state — the interesting
    // resume shape.
    for (const char *spec :
         {"checkpoint.save:4=kill", "atomic_file.write:3=torn"}) {
        SCOPED_TRACE(spec);
        const std::string ckpt = tempPath(std::string("late_") + spec);
        const std::string csv = ckpt + ".csv";
        std::remove(ckpt.c_str());
        std::remove(csv.c_str());

        ExitStatus hit = runChild({"--crash-child=campaign",
                                   std::string("--spec=") + spec,
                                   "--ckpt=" + ckpt, "--csv=" + csv});
        EXPECT_TRUE(hit.signaled && hit.signal == SIGKILL)
            << hit.describe();
        ASSERT_TRUE(fs::exists(ckpt)) << "no journal to resume from";

        const ExitStatus status =
            runChild({"--crash-child=campaign", "--ckpt=" + ckpt,
                      "--csv=" + csv, "--resume"});
        EXPECT_TRUE(status.exited && status.code == 0)
            << status.describe();
        EXPECT_EQ(slurp(ckpt), slurp(ref_ckpt));
        EXPECT_EQ(slurp(csv), slurp(ref_csv));
        std::remove(ckpt.c_str());
        std::remove(csv.c_str());
    }
    std::remove(ref_ckpt.c_str());
    std::remove(ref_csv.c_str());
}

TEST(CrashMatrix, StoreRoundTripRecoversFromEveryPublishFault)
{
    using service::ResultStore;
    const auto records = matrixStoreRecords();

    // Points a record publish actually passes through.
    const char *points[] = {"store.publish", "atomic_file.pre_tmp_write",
                            "atomic_file.write", "atomic_file.pre_fsync",
                            "atomic_file.pre_rename",
                            "atomic_file.post_rename"};
    for (const char *point : points) {
        for (const char *action : {"kill", "torn", "enospc", "garble"}) {
            SCOPED_TRACE(std::string(point) + "=" + action);
            const std::string dir =
                tempPath(std::string("mstore_") + point + "_" + action);
            fs::remove_all(dir);

            ExitStatus hit = runChild(
                {"--crash-child=store",
                 std::string("--spec=") + point + "=" + action,
                 "--dir=" + dir});
            if (!(hit.exited && hit.code == 0)) {
                // Recovery discipline: fsck --repair, then republish.
                service::FsckOptions repair;
                repair.repair = true;
                const service::FsckReport report =
                    service::fsckStore(dir, repair);
                EXPECT_TRUE(report.clean());
                const ExitStatus status =
                    runChild({"--crash-child=store", "--dir=" + dir});
                EXPECT_TRUE(status.exited && status.code == 0)
                    << status.describe();
            }

            // Byte-identical round trip: every record is served with
            // exactly the bytes an undisturbed run would have written.
            for (const auto &[key, payload] : records) {
                const std::string path =
                    dir + "/" + ResultStore::recordFileName(key);
                EXPECT_EQ(slurp(path),
                          ResultStore::serializeRecord(key, payload));
            }
            EXPECT_TRUE(
                service::fsckStore(dir, service::FsckOptions{}).clean());
            fs::remove_all(dir);
        }
    }
}

TEST(CrashMatrix, FsckAndCompactRecoverFromTheirOwnCrashPoints)
{
    // Reference: what an undisturbed compact leaves behind.
    const std::string ref_dir = tempPath("mfsck_ref");
    makeDamagedStore(ref_dir);
    ASSERT_TRUE(service::compactStore(ref_dir).clean());
    std::map<std::string, std::string> ref_files;
    for (const fs::directory_entry &entry :
         fs::recursive_directory_iterator(ref_dir)) {
        if (entry.is_regular_file()) {
            const std::string rel =
                fs::relative(entry.path(), ref_dir).string();
            ref_files[rel] = slurp(entry.path().string());
        }
    }
    ASSERT_FALSE(ref_files.empty());

    for (const char *point : {"fsck.repair", "compact.rewrite"}) {
        for (const char *action : {"kill", "torn", "enospc", "throw"}) {
            SCOPED_TRACE(std::string(point) + "=" + action);
            const std::string dir =
                tempPath(std::string("mfsck_") + point + "_" + action);
            makeDamagedStore(dir);

            ExitStatus hit = runChild(
                {"--crash-child=fsck",
                 std::string("--spec=") + point + "=" + action,
                 "--dir=" + dir});
            // Both points sit on reachable repair work, so every
            // action must have disturbed the run...
            EXPECT_FALSE(hit.exited && hit.code == 0)
                << hit.describe();
            // ...and whatever it did, a rerun must converge to the
            // reference state, file for file, byte for byte.
            const ExitStatus status =
                runChild({"--crash-child=fsck", "--dir=" + dir});
            EXPECT_TRUE(status.exited && status.code == 0)
                << status.describe();

            std::map<std::string, std::string> files;
            for (const fs::directory_entry &entry :
                 fs::recursive_directory_iterator(dir)) {
                if (entry.is_regular_file()) {
                    const std::string rel =
                        fs::relative(entry.path(), dir).string();
                    files[rel] = slurp(entry.path().string());
                }
            }
            EXPECT_EQ(files, ref_files);
            fs::remove_all(dir);
        }
    }
    fs::remove_all(ref_dir);
}

TEST(CrashMatrix, EnvironmentVariableArmsBeforeMain)
{
    // The end-to-end arming path users and CI drive: the spec rides in
    // via DAVF_TEST_CRASHPOINT and must be armed by the time the first
    // persistence call happens — no in-process arm() involved.
    const std::string ckpt = tempPath("env_arm.ckpt");
    const std::string csv = tempPath("env_arm.csv");
    std::remove(ckpt.c_str());
    std::remove(csv.c_str());

    Subprocess child;
    child.spawn({"/usr/bin/env",
                 "DAVF_TEST_CRASHPOINT=checkpoint.save=kill",
                 Subprocess::selfExePath(), "--crash-child=campaign",
                 "--ckpt=" + ckpt, "--csv=" + csv});
    child.closeWrite();
    const ExitStatus status = child.wait();
    EXPECT_TRUE(status.signaled && status.signal == SIGKILL)
        << status.describe();
    EXPECT_FALSE(fs::exists(ckpt))
        << "the kill fires before the first journal byte lands";
    std::remove(csv.c_str());
}

// ----------------------------------------------------------- child modes

/** Child options parsed from --spec= / --ckpt= / --csv= / --dir=. */
struct ChildArgs
{
    std::string spec;
    std::string ckpt;
    std::string csv;
    std::string dir;
    bool resume = false;
};

int
campaignChild(const ChildArgs &args)
{
    MatrixFixture fixture;
    CampaignOptions opts = fixture.options();
    opts.checkpointPath = args.ckpt;
    opts.csvPath = args.csv;
    opts.resume = args.resume;
    Campaign campaign(*fixture.engine, *fixture.registry, opts);
    const CampaignSummary summary = campaign.run();
    return summary.interrupted || summary.cellsFailed != 0 ? 4 : 0;
}

int
storeChild(const ChildArgs &args)
{
    service::ResultStore store({args.dir, 8, service::StoreFormat::Legacy});
    for (const auto &[key, payload] : matrixStoreRecords())
        store.store(key, payload);
    // A publish swallowed by the non-fatal path (throw/enospc actions)
    // still has to surface to the matrix driver so it runs recovery.
    return store.stats().writeFailures == 0 ? 0 : 5;
}

int
fsckChild(const ChildArgs &args)
{
    return service::compactStore(args.dir).clean() ? 0 : 6;
}

int
crashChildMain(const std::string &mode, const ChildArgs &args)
{
    try {
        if (!args.spec.empty())
            crashpoint::arm(crashpoint::parseSpec(args.spec.c_str()));
        if (mode == "campaign")
            return campaignChild(args);
        if (mode == "store")
            return storeChild(args);
        if (mode == "fsck")
            return fsckChild(args);
        std::fprintf(stderr, "unknown crash-child mode '%s'\n",
                     mode.c_str());
        return 125;
    } catch (const DavfError &error) {
        std::fprintf(stderr, "crash-child: %s\n", error.what());
        return 3;
    }
}

} // namespace
} // namespace davf

int
main(int argc, char **argv)
{
    std::string child_mode;
    davf::ChildArgs child_args;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        auto take = [&](std::string_view prefix, std::string &out) {
            if (arg.substr(0, prefix.size()) != prefix)
                return false;
            out = std::string(arg.substr(prefix.size()));
            return true;
        };
        if (take("--crash-child=", child_mode)
            || take("--spec=", child_args.spec)
            || take("--ckpt=", child_args.ckpt)
            || take("--csv=", child_args.csv)
            || take("--dir=", child_args.dir)) {
            continue;
        }
        if (arg == "--resume")
            child_args.resume = true;
    }
    if (!child_mode.empty())
        return davf::crashChildMain(child_mode, child_args);

    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
