/**
 * @file
 * Command-line front end for DelayAVF analyses — the equivalent of the
 * paper artifact's `run_all.sh` + configuration-json workflow (paper
 * appendix E): pick a benchmark/payload, a structure, a delay range,
 * sampling rates, and the ECC switch, and get DelayAVF / OrDelayAVF /
 * sAVF rows on stdout or as CSV.
 *
 * Usage:
 *   davf_run [options]
 *     --benchmark NAME     md5|bubblesort|libstrstr|libfibcall|matmult|
 *                          crc32|popcount              (default libstrstr)
 *     --structure NAME     ALU|Decoder|Regfile|LSU|Prefetch (default ALU)
 *     --delays LO:HI:STEP  delay fractions of the period (default
 *                          0.1:0.9:0.2)
 *     --ecc                protect the register file with SEC ECC
 *     --cycles N           injection cycles (default 8)
 *     --wires N            wire sample per structure, 0 = all (default 400)
 *     --flops N            flop sample for sAVF, 0 = all (default 96)
 *     --seed N             sampling seed (default 1)
 *     --threads N          worker threads, 0 = all cores (default 0)
 *     --savf               also run particle-strike sAVF on the structure
 *     --sta-period         use the STA longest path as the clock (default:
 *                          observed-max timing-closure emulation)
 *     --csv FILE           append results as CSV rows
 *     --list               list benchmarks and structures, then exit
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/report.hh"
#include "core/vulnerability.hh"
#include "isa/assembler.hh"
#include "isa/benchmarks.hh"
#include "soc/ibex_mini.hh"
#include "soc/soc_workload.hh"

using namespace davf;

namespace {

struct Options
{
    std::string benchmark = "libstrstr";
    std::string structure = "ALU";
    double delay_lo = 0.1;
    double delay_hi = 0.9;
    double delay_step = 0.2;
    bool ecc = false;
    bool run_savf = false;
    bool sta_period = false;
    SamplingConfig sampling;
    std::string csv_path;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--benchmark N] [--structure N] "
                 "[--delays LO:HI:STEP]\n"
                 "          [--ecc] [--cycles N] [--wires N] [--flops N]"
                 " [--seed N]\n"
                 "          [--threads N] [--savf] [--sta-period] "
                 "[--csv FILE] [--list]\n",
                 argv0);
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    Options opts;
    opts.sampling.maxInjectionCycles = 8;
    opts.sampling.maxWires = 400;
    opts.sampling.maxFlops = 96;

    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--benchmark") {
            opts.benchmark = need(i);
        } else if (arg == "--structure") {
            opts.structure = need(i);
        } else if (arg == "--delays") {
            const char *spec = need(i);
            if (std::sscanf(spec, "%lf:%lf:%lf", &opts.delay_lo,
                            &opts.delay_hi, &opts.delay_step)
                != 3) {
                usage(argv[0]);
            }
        } else if (arg == "--ecc") {
            opts.ecc = true;
        } else if (arg == "--savf") {
            opts.run_savf = true;
        } else if (arg == "--sta-period") {
            opts.sta_period = true;
        } else if (arg == "--cycles") {
            opts.sampling.maxInjectionCycles =
                static_cast<unsigned>(std::atoi(need(i)));
        } else if (arg == "--wires") {
            opts.sampling.maxWires =
                static_cast<size_t>(std::atoll(need(i)));
        } else if (arg == "--flops") {
            opts.sampling.maxFlops =
                static_cast<size_t>(std::atoll(need(i)));
        } else if (arg == "--seed") {
            opts.sampling.seed =
                static_cast<uint64_t>(std::atoll(need(i)));
        } else if (arg == "--threads") {
            opts.sampling.threads =
                static_cast<unsigned>(std::atoi(need(i)));
        } else if (arg == "--csv") {
            opts.csv_path = need(i);
        } else if (arg == "--list") {
            std::printf("benchmarks:");
            for (const auto &program : beebsBenchmarks())
                std::printf(" %s", program.name.c_str());
            for (const auto &program : extraBenchmarks())
                std::printf(" %s", program.name.c_str());
            std::printf("\nstructures: ALU Decoder Regfile LSU "
                        "Prefetch\n");
            std::exit(0);
        } else {
            usage(argv[0]);
        }
    }
    return opts;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = parse(argc, argv);

    const BenchmarkProgram &program = beebsBenchmark(opts.benchmark);
    IbexMiniConfig soc_config;
    soc_config.eccRegfile = opts.ecc;
    std::fprintf(stderr, "building IbexMini (%s regfile), assembling "
                 "%s...\n",
                 opts.ecc ? "ECC" : "plain", opts.benchmark.c_str());
    IbexMini soc(soc_config, assemble(program.source));

    const Structure *structure = soc.structures().find(opts.structure);
    if (!structure) {
        std::fprintf(stderr, "unknown structure '%s'\n",
                     opts.structure.c_str());
        return 2;
    }

    SocWorkload workload(soc);
    EngineOptions engine_options;
    if (!opts.sta_period) {
        engine_options.periodMode =
            EngineOptions::PeriodMode::ObservedMaxPlusMargin;
    }
    std::fprintf(stderr, "running golden capture...\n");
    VulnerabilityEngine engine(soc.netlist(),
                               CellLibrary::defaultLibrary(), workload,
                               engine_options);
    std::fprintf(stderr,
                 "golden: %llu cycles, clock period %.1f ps\n\n",
                 static_cast<unsigned long long>(engine.goldenCycles()),
                 engine.clockPeriod());

    std::ofstream csv;
    if (!opts.csv_path.empty()) {
        csv.open(opts.csv_path, std::ios::app);
        if (!csv) {
            std::fprintf(stderr, "cannot open %s\n",
                         opts.csv_path.c_str());
            return 2;
        }
        csv << delayAvfCsvHeader() << '\n';
    }

    std::printf("%-8s%12s%12s%10s%10s%8s%8s\n", "d", "DelayAVF",
                "OrDelayAVF", "static", "dynamic", "SDC", "DUE");
    for (double d = opts.delay_lo; d <= opts.delay_hi + 1e-9;
         d += opts.delay_step) {
        const DelayAvfResult result =
            engine.delayAvf(*structure, d, opts.sampling);
        std::printf("%-8.2f%12.5f%12.5f%10.3f%10.3f%8llu%8llu\n", d,
                    result.delayAvf, result.orDelayAvf,
                    result.staticWireFraction,
                    result.dynamicWireFraction,
                    static_cast<unsigned long long>(result.sdc),
                    static_cast<unsigned long long>(result.due));
        if (csv.is_open()) {
            const std::string label = opts.structure
                + (opts.ecc ? " (ECC)" : "");
            csv << delayAvfCsvRow(opts.benchmark, label, d, result)
                << '\n';
        }
    }

    if (opts.run_savf) {
        if (structure->flops.empty()) {
            std::printf("\nsAVF: structure has no flops\n");
        } else {
            const SavfResult savf =
                engine.savf(*structure, opts.sampling);
            std::printf("\nsAVF = %.5f (%llu/%llu ACE; SDC %llu, "
                        "DUE %llu)\n",
                        savf.savf,
                        static_cast<unsigned long long>(
                            savf.aceInjections),
                        static_cast<unsigned long long>(
                            savf.injections),
                        static_cast<unsigned long long>(savf.sdc),
                        static_cast<unsigned long long>(savf.due));
        }
    }
    return 0;
}
