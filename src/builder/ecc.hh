/**
 * @file
 * Single-error-correcting Hamming ECC, soft and gate-level.
 *
 * The paper's ECC case study (§VI-C, Fig. 11) protects the Ibex register
 * file with a SEC code and no double-error detection: every single-bit
 * codeword error is corrected transparently, while multi-bit errors can
 * silently mis-correct — exactly the behaviour Table III's
 * ACE-compounding analysis relies on.
 *
 * Codewords use the classic Hamming layout: positions 1..n with parity
 * bits at the powers of two and data bits filling the remaining
 * positions in ascending order. Code bit i of the Bus/uint64_t forms
 * corresponds to position i+1. For k = 32 data bits this gives r = 6
 * parity bits and a 38-bit codeword.
 *
 * The soft model (eccEncodeSoft/eccCorrectSoft) is the specification;
 * the gate-level builders (eccEncode/eccCorrect) emit XOR trees plus a
 * syndrome decoder and are verified equivalent by tests/test_ecc.cc.
 */

#ifndef DAVF_BUILDER_ECC_HH
#define DAVF_BUILDER_ECC_HH

#include <cstdint>

#include "builder/builder.hh"

namespace davf {

/** Number of Hamming parity bits for @p data_bits of data. */
unsigned eccParityBits(unsigned data_bits);

/** Codeword width: data_bits + eccParityBits(data_bits). */
unsigned eccCodeWidth(unsigned data_bits);

/** Encode @p data (low @p data_bits bits) into a codeword. */
uint64_t eccEncodeSoft(uint64_t data, unsigned data_bits);

/**
 * Decode @p code, correcting up to one flipped bit. Multi-bit errors
 * silently decode to wrong data (no detection).
 */
uint64_t eccCorrectSoft(uint64_t code, unsigned data_bits);

/** Gate-level encoder: @p data.size() data bits -> codeword bus. */
Bus eccEncode(ModuleBuilder &b, const Bus &data);

/** Gate-level corrector: codeword bus -> @p data_bits corrected data. */
Bus eccCorrect(ModuleBuilder &b, const Bus &code, unsigned data_bits);

} // namespace davf

#endif // DAVF_BUILDER_ECC_HH
