#include "memory.hh"

#include "util/logging.hh"

namespace davf {

MemoryModel::MemoryModel(unsigned mem_words_log2,
                         const std::vector<uint32_t> &initial_image)
    : memWordsLog2(mem_words_log2), image(initial_image)
{
    davf_assert(image.size() <= (size_t{1} << memWordsLog2),
                "image larger than RAM");
    std::vector<bool> dummy;
    dummy.resize(numOutputs());
    reset(dummy);
}

uint64_t
MemoryModel::mix(uint64_t index, uint64_t value)
{
    // splitmix64-style finalizer over (index, value).
    uint64_t z = index * 0x9e3779b97f4a7c15ull + value
        + 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
MemoryModel::imageHash(const std::vector<uint32_t> &words)
{
    uint64_t hash = 0;
    for (size_t i = 0; i < words.size(); ++i)
        hash ^= mix(i, words[i]);
    return hash;
}

void
MemoryModel::writeWord(uint32_t index, uint32_t value)
{
    hash ^= mix(index, mem[index]);
    mem[index] = value;
    hash ^= mix(index, value);
}

void
MemoryModel::reset(std::vector<bool> &outputs)
{
    mem.assign(size_t{1} << memWordsLog2, 0);
    std::copy(image.begin(), image.end(), mem.begin());
    hash = 0;
    for (size_t i = 0; i < mem.size(); ++i)
        hash ^= mix(i, mem[i]);
    outputLog.clear();
    isHalted = false;
    idata = 0;
    drdata = 0;
    outputs.assign(numOutputs(), false);
}

void
MemoryModel::clockEdge(const std::vector<bool> &inputs,
                       std::vector<bool> &outputs)
{
    // Unpack pins: iaddr, daddr, dwdata, dwe, dben.
    size_t pin = 0;
    auto take = [&](unsigned width) -> uint32_t {
        uint32_t value = 0;
        for (unsigned i = 0; i < width; ++i, ++pin)
            value |= uint32_t{inputs[pin]} << i;
        return value;
    };
    const uint32_t iaddr = take(iaddrBits());
    const uint32_t daddr = take(daddrBits());
    const uint32_t dwdata = take(32);
    const bool dwe = take(1) != 0;
    const uint32_t dben = take(4);

    const uint32_t mmio_bit = 1u << memWordsLog2;
    const uint32_t dword = daddr & (mmio_bit - 1);

    // Synchronous reads (read-before-write semantics).
    idata = mem[iaddr];
    drdata = (daddr & mmio_bit) ? 0 : mem[dword];

    if (dwe) {
        if (daddr & mmio_bit) {
            if (dword == 0)
                outputLog.push_back(dwdata);
            else if (dword == 1)
                isHalted = true;
        } else {
            uint32_t value = mem[dword];
            for (unsigned byte = 0; byte < 4; ++byte) {
                if (dben & (1u << byte)) {
                    const uint32_t mask = 0xffu << (byte * 8);
                    value = (value & ~mask) | (dwdata & mask);
                }
            }
            writeWord(dword, value);
        }
    }

    outputs.assign(numOutputs(), false);
    for (unsigned i = 0; i < 32; ++i)
        outputs[i] = (idata >> i) & 1;
    for (unsigned i = 0; i < 32; ++i)
        outputs[32 + i] = (drdata >> i) & 1;
    outputs[64] = isHalted;
}

std::vector<uint64_t>
MemoryModel::snapshot() const
{
    std::vector<uint64_t> data;
    data.reserve(5 + outputLog.size() + mem.size());
    data.push_back(isHalted ? 1 : 0);
    data.push_back(idata);
    data.push_back(drdata);
    data.push_back(hash);
    data.push_back(outputLog.size());
    for (uint32_t word : outputLog)
        data.push_back(word);
    for (uint32_t word : mem)
        data.push_back(word);
    return data;
}

void
MemoryModel::restore(const std::vector<uint64_t> &data)
{
    size_t at = 0;
    isHalted = data[at++] != 0;
    idata = static_cast<uint32_t>(data[at++]);
    drdata = static_cast<uint32_t>(data[at++]);
    hash = data[at++];
    const auto log_size = static_cast<size_t>(data[at++]);
    outputLog.resize(log_size);
    for (size_t i = 0; i < log_size; ++i)
        outputLog[i] = static_cast<uint32_t>(data[at++]);
    davf_assert(data.size() - at == mem.size(),
                "memory snapshot size mismatch");
    for (size_t i = 0; i < mem.size(); ++i)
        mem[i] = static_cast<uint32_t>(data[at++]);
}

} // namespace davf
