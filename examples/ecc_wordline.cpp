/**
 * @file
 * The paper's Figure 11 scenario as a standalone circuit: a small
 * SEC-ECC-protected memory array whose wordline/select timing can be
 * corrupted by a small delay fault.
 *
 * The array stores four 8-bit values as 12-bit Hamming codewords. Every
 * cycle a rotating write port refreshes one row and a rotating read
 * port reads another; the read goes through the ECC corrector to a
 * trace sink. The example shows, concretely:
 *
 *   1. a particle strike in any storage cell is corrected (sAVF = 0);
 *   2. an SDF on a read-select wire makes the output mux re-latch a
 *      *different row's* codeword — a valid codeword! — so ECC happily
 *      passes the wrong data through (the paper's wordline re-latch
 *      escape);
 *   3. the same SDF set is invisible to the ORACE approximation when no
 *      individual bit error is ACE (ACE compounding).
 *
 *   $ ./examples/ecc_wordline
 */

#include <cstdio>
#include <memory>

#include "builder/builder.hh"
#include "builder/ecc.hh"
#include "core/vulnerability.hh"
#include "core/workload.hh"
#include "netlist/structure.hh"

using namespace davf;

int
main()
{
    constexpr unsigned kDataBits = 8;
    const unsigned code_bits = eccCodeWidth(kDataBits); // 12.

    Netlist netlist;
    ModuleBuilder b(netlist);
    b.pushScope("array");

    // A free-running 4-bit counter provides addresses and data.
    Bus count;
    {
        Bus d = b.freshBus(4, "cnt_d");
        count = b.regB(d, 0, "cnt");
        b.connectBus(d, b.adder(count, b.constantBus(4, 1),
                                b.constant(false)));
    }
    const Bus waddr = {count[0], count[1]};           // Write row.
    const Bus raddr = {b.inv(count[0]), count[1]};    // Read row.
    Bus wdata = {count[0], count[1], count[2], count[3]};
    wdata.resize(kDataBits, b.constant(false));

    // Encoded write into 4 rows of DFFE codewords.
    const Bus code_in = eccEncode(b, wdata);
    const Bus wdec = b.decode(waddr);
    std::vector<Bus> rows;
    for (unsigned row = 0; row < 4; ++row) {
        rows.push_back(b.regE(code_in, wdec[row], 0,
                              "row" + std::to_string(row) + "_"));
    }

    // Read mux (the "wordline"/select path of interest) + corrector.
    const Bus read_code = b.muxTree(raddr, rows);
    const Bus read_data = eccCorrect(b, read_code, kDataBits);

    Bus sink_in = read_data;
    sink_in.push_back(b.constant(true));
    const CellId sink = netlist.addBehavioral(
        "array/sink", std::make_shared<TraceSinkModel>(kDataBits),
        sink_in, {});
    b.popScope();
    netlist.finalize();

    TraceWorkload workload(sink, 24);
    VulnerabilityEngine engine(netlist, CellLibrary::defaultLibrary(),
                               workload);
    StructureRegistry registry(netlist);
    const Structure &array = registry.add("Array", "array/");

    std::printf("SEC-ECC memory array: %u x %u-bit codewords, period "
                "%.0f ps\n\n",
                4u, code_bits, engine.clockPeriod());

    // 1. Particle strikes into the storage cells: always corrected.
    SamplingConfig config;
    config.maxInjectionCycles = 8;
    const SavfResult savf = engine.savf(array, config);
    std::printf("1. particle strikes into storage flops: %llu "
                "injections, %llu ACE -> sAVF = %.3f\n",
                static_cast<unsigned long long>(savf.injections),
                static_cast<unsigned long long>(savf.aceInjections),
                savf.savf);

    // 2. SDFs across the array's wires.
    const DelayAvfResult delay = engine.delayAvf(array, 0.9, config);
    std::printf("2. SDFs at d = 90%%: %llu injections, %llu error "
                "sets (%llu multi-bit) -> DelayAVF = %.4f\n",
                static_cast<unsigned long long>(delay.injections),
                static_cast<unsigned long long>(delay.errorInjections),
                static_cast<unsigned long long>(
                    delay.multiBitInjections),
                delay.delayAvf);

    // 3. Find and narrate one escaping select-path injection.
    const double d = 0.9 * engine.clockPeriod();
    for (uint64_t cycle = 2; cycle < engine.goldenCycles(); ++cycle) {
        for (WireId wire : array.wires) {
            const auto errors = engine.dynamicErrors(wire, cycle, d);
            if (errors.size() < 2)
                continue;
            if (engine.groupVerdict(errors, cycle) == FailureKind::None)
                continue;
            bool any_single_ace = false;
            for (const auto &error : errors) {
                const CycleSimulator::Force single[] = {error};
                if (engine.groupVerdict(single, cycle)
                    != FailureKind::None) {
                    any_single_ace = true;
                    break;
                }
            }
            std::printf("3. escape: SDF on '%s' in cycle %llu causes "
                        "%zu simultaneous errors;\n   GroupACE yes, "
                        "individually ACE: %s -> %s\n",
                        netlist.wireName(wire).c_str(),
                        static_cast<unsigned long long>(cycle),
                        errors.size(), any_single_ace ? "yes" : "no",
                        any_single_ace
                            ? "ORACE would catch this set"
                            : "invisible to ORACE (ACE compounding)");
            return 0;
        }
    }
    std::printf("3. no multi-bit escape found in this sweep\n");
    return 0;
}
