#include "ecc.hh"

#include <vector>

#include "util/logging.hh"

namespace davf {

namespace {

/** True if Hamming position @p pos (1-based) holds a parity bit. */
bool
isParityPosition(unsigned pos)
{
    return (pos & (pos - 1)) == 0;
}

/** Data positions (1-based), ascending, for @p data_bits of data. */
std::vector<unsigned>
dataPositions(unsigned data_bits)
{
    std::vector<unsigned> positions;
    positions.reserve(data_bits);
    const unsigned n = eccCodeWidth(data_bits);
    for (unsigned pos = 1; pos <= n; ++pos) {
        if (!isParityPosition(pos))
            positions.push_back(pos);
    }
    davf_assert(positions.size() == data_bits,
                "ecc layout mismatch for ", data_bits, " data bits");
    return positions;
}

} // namespace

unsigned
eccParityBits(unsigned data_bits)
{
    davf_assert(data_bits >= 1 && data_bits <= 57,
                "unsupported ecc data width ", data_bits);
    unsigned r = 1;
    while ((1u << r) < data_bits + r + 1)
        ++r;
    return r;
}

unsigned
eccCodeWidth(unsigned data_bits)
{
    return data_bits + eccParityBits(data_bits);
}

uint64_t
eccEncodeSoft(uint64_t data, unsigned data_bits)
{
    const unsigned r = eccParityBits(data_bits);
    const std::vector<unsigned> positions = dataPositions(data_bits);

    uint64_t code = 0;
    for (unsigned i = 0; i < data_bits; ++i) {
        if ((data >> i) & 1)
            code |= uint64_t{1} << (positions[i] - 1);
    }
    // Parity bit i covers every position with bit i set in its index;
    // choose it so the covered XOR (parity included) is zero.
    for (unsigned i = 0; i < r; ++i) {
        const unsigned parity_pos = 1u << i;
        unsigned parity = 0;
        for (unsigned pos = 1; pos <= eccCodeWidth(data_bits); ++pos) {
            if ((pos & parity_pos) && ((code >> (pos - 1)) & 1))
                parity ^= 1;
        }
        if (parity)
            code |= uint64_t{1} << (parity_pos - 1);
    }
    return code;
}

uint64_t
eccCorrectSoft(uint64_t code, unsigned data_bits)
{
    const unsigned n = eccCodeWidth(data_bits);
    unsigned syndrome = 0;
    for (unsigned pos = 1; pos <= n; ++pos) {
        if ((code >> (pos - 1)) & 1)
            syndrome ^= pos;
    }
    if (syndrome != 0 && syndrome <= n)
        code ^= uint64_t{1} << (syndrome - 1);

    const std::vector<unsigned> positions = dataPositions(data_bits);
    uint64_t data = 0;
    for (unsigned i = 0; i < data_bits; ++i) {
        if ((code >> (positions[i] - 1)) & 1)
            data |= uint64_t{1} << i;
    }
    return data;
}

Bus
eccEncode(ModuleBuilder &b, const Bus &data)
{
    const auto data_bits = static_cast<unsigned>(data.size());
    const unsigned r = eccParityBits(data_bits);
    const unsigned n = eccCodeWidth(data_bits);
    const std::vector<unsigned> positions = dataPositions(data_bits);

    Bus code(n, kInvalidId);
    for (unsigned i = 0; i < data_bits; ++i)
        code[positions[i] - 1] = data[i];

    for (unsigned i = 0; i < r; ++i) {
        const unsigned parity_pos = 1u << i;
        Bus covered;
        for (unsigned pos = 1; pos <= n; ++pos) {
            if ((pos & parity_pos) && !isParityPosition(pos))
                covered.push_back(code[pos - 1]);
        }
        code[parity_pos - 1] = b.reduceXor(covered);
    }
    return code;
}

Bus
eccCorrect(ModuleBuilder &b, const Bus &code, unsigned data_bits)
{
    const unsigned r = eccParityBits(data_bits);
    const unsigned n = eccCodeWidth(data_bits);
    davf_assert(code.size() == n, "ecc codeword width mismatch");

    // Syndrome bit i = XOR of every position with bit i set (parity
    // included); the syndrome spells the flipped position, 0 if clean.
    Bus syndrome(r);
    for (unsigned i = 0; i < r; ++i) {
        Bus covered;
        for (unsigned pos = 1; pos <= n; ++pos) {
            if (pos & (1u << i))
                covered.push_back(code[pos - 1]);
        }
        syndrome[i] = b.reduceXor(covered);
    }

    // Data bit = code bit XOR (syndrome == its position).
    const Bus dec = b.decode(syndrome);
    const std::vector<unsigned> positions = dataPositions(data_bits);
    Bus data(data_bits);
    for (unsigned i = 0; i < data_bits; ++i) {
        data[i] = b.xor2(code[positions[i] - 1], dec[positions[i]]);
    }
    return data;
}

} // namespace davf
