/**
 * @file
 * Property tests for the ISA layer: algebraic identities that must hold
 * for any operands, executed end-to-end through the assembler and the
 * ISS. These catch encode/decode disagreements that example-based tests
 * can miss (e.g. a field swapped consistently in both directions).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "src/isa/assembler.hh"
#include "src/isa/iss.hh"
#include "src/util/rng.hh"

namespace davf {
namespace {

/** Run a fragment that leaves its result in a0 and outputs it. */
uint32_t
runForA0(const std::string &body)
{
    std::ostringstream out;
    out << body << R"(
  li t6, 0x10000
  sw a0, 0(t6)
  sw x0, 4(t6)
)";
    Iss iss(assemble(out.str()));
    EXPECT_TRUE(iss.run(10000));
    EXPECT_EQ(iss.outputTrace().size(), 1u);
    return iss.outputTrace().empty() ? 0 : iss.outputTrace()[0];
}

std::string
li(const char *reg, uint32_t value)
{
    std::ostringstream out;
    out << "  li " << reg << ", "
        << static_cast<int64_t>(static_cast<int32_t>(value)) << "\n";
    return out.str();
}

class IsaProps : public ::testing::TestWithParam<uint64_t>
{
  protected:
    Rng rng{GetParam()};
};

TEST_P(IsaProps, AddSubRoundTrip)
{
    for (int trial = 0; trial < 8; ++trial) {
        const uint32_t a = rng.next32();
        const uint32_t b = rng.next32();
        const uint32_t got = runForA0(li("a0", a) + li("a1", b)
                                      + "  add a0, a0, a1\n"
                                        "  sub a0, a0, a1\n");
        EXPECT_EQ(got, a);
    }
}

TEST_P(IsaProps, DeMorgan)
{
    for (int trial = 0; trial < 8; ++trial) {
        const uint32_t a = rng.next32();
        const uint32_t b = rng.next32();
        // ~(a & b) == ~a | ~b.
        const uint32_t lhs = runForA0(li("a0", a) + li("a1", b)
                                      + "  and a0, a0, a1\n"
                                        "  not a0, a0\n");
        const uint32_t rhs = runForA0(li("a0", a) + li("a1", b)
                                      + "  not a0, a0\n"
                                        "  not a1, a1\n"
                                        "  or a0, a0, a1\n");
        EXPECT_EQ(lhs, rhs);
        EXPECT_EQ(lhs, ~(a & b));
    }
}

TEST_P(IsaProps, ShiftComposition)
{
    for (int trial = 0; trial < 8; ++trial) {
        const uint32_t a = rng.next32();
        const unsigned s1 = rng.below(16);
        const unsigned s2 = rng.below(16);
        std::ostringstream body;
        body << li("a0", a) << "  slli a0, a0, " << s1 << "\n"
             << "  slli a0, a0, " << s2 << "\n";
        EXPECT_EQ(runForA0(body.str()), a << (s1 + s2));
    }
}

TEST_P(IsaProps, SraEqualsArithmeticShift)
{
    for (int trial = 0; trial < 8; ++trial) {
        const uint32_t a = rng.next32();
        const unsigned shift = rng.below(32);
        std::ostringstream body;
        body << li("a0", a) << "  srai a0, a0, " << shift << "\n";
        EXPECT_EQ(runForA0(body.str()),
                  static_cast<uint32_t>(static_cast<int32_t>(a)
                                        >> shift));
    }
}

TEST_P(IsaProps, SltMatchesBranch)
{
    // slt and blt must agree: compute slt, then verify with a branch.
    for (int trial = 0; trial < 8; ++trial) {
        const uint32_t a = rng.next32();
        const uint32_t b = rng.next32();
        const uint32_t got = runForA0(li("a1", a) + li("a2", b) + R"(
  slt a3, a1, a2
  li a0, 0
  bge a1, a2, not_less
  li a0, 1
not_less:
  xor a0, a0, a3     # 0 iff they agree
)");
        EXPECT_EQ(got, 0u) << a << " vs " << b;
    }
}

TEST_P(IsaProps, StoreLoadRoundTripAllByteLanes)
{
    for (unsigned lane = 0; lane < 4; ++lane) {
        const uint32_t value = rng.next32() & 0xff;
        std::ostringstream body;
        body << li("a1", value) << "  la a2, buf\n"
             << "  sb a1, " << lane << "(a2)\n"
             << "  lbu a0, " << lane << "(a2)\n"
             << "  j cont\nbuf: .space 4\ncont:\n";
        EXPECT_EQ(runForA0(body.str()), value);
    }
}

TEST_P(IsaProps, JalLinksReturnAddress)
{
    // call/ret through a chain of two functions returns correctly.
    const uint32_t a = rng.next32() & 0xffff;
    const uint32_t got = runForA0(li("a0", a) + R"(
  li sp, 0x8000
  call outer
  j done
outer:
  addi sp, sp, -4
  sw ra, 0(sp)
  call inner
  addi a0, a0, 1
  lw ra, 0(sp)
  addi sp, sp, 4
  ret
inner:
  addi a0, a0, 2
  ret
done:
)");
    EXPECT_EQ(got, a + 3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IsaProps,
                         ::testing::Values(11, 22, 33, 44));

} // namespace
} // namespace davf
