/**
 * @file
 * Minimal RV32I(+M) disassembler for attribution labels.
 *
 * Produces one canonical text per instruction word — "lw x1, 8(x2)",
 * "beq x5, x0, -12" — used as the human-readable half of the
 * per-instruction vulnerability table (docs/ANALYSIS.md). Registers are
 * always printed in their numeric form (x0..x31) and branch/jump
 * immediates as signed byte offsets relative to the instruction, so the
 * text is a pure function of the word (no symbol or ABI-name tables).
 * Unrecognized words render as ".word 0x%08x" instead of failing: the
 * table must stay total over whatever the image holds.
 */

#ifndef DAVF_ANALYSIS_DISASM_HH
#define DAVF_ANALYSIS_DISASM_HH

#include <cstdint>
#include <string>

namespace davf::analysis {

/** Canonical disassembly of one RV32I(+M) instruction word. */
std::string disassemble(uint32_t word);

} // namespace davf::analysis

#endif // DAVF_ANALYSIS_DISASM_HH
