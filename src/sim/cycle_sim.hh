/**
 * @file
 * Timing-agnostic cycle-accurate gate-level simulator (the Verilator role
 * in the paper's flow, Fig. 5).
 *
 * Values are two-valued; every run starts from a deterministic reset. The
 * simulator supports the two fault-injection mechanisms the DelayAVF
 * methodology needs:
 *
 *  - **Edge forcing** (`step` with forces): at a clock edge, override the
 *    value a state element samples — this is how a dynamically reachable
 *    set's wrong latched values are injected for the GroupACE step, and
 *    how single-state-element ACEness is measured for ORACE.
 *  - **Flop flipping** (`flipFlop`): invert a flop's currently stored
 *    value mid-execution — the particle-strike model used for sAVF.
 *
 * Snapshots capture the complete simulation state (net values, behavioral
 * internals, cycle count) so the vulnerability engine can fan out many
 * faulty continuations from each sampled injection cycle.
 */

#ifndef DAVF_SIM_CYCLE_SIM_HH
#define DAVF_SIM_CYCLE_SIM_HH

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "netlist/netlist.hh"

namespace davf {

/** Cycle-accurate two-valued simulator over a finalized netlist. */
class CycleSimulator
{
  public:
    /** A forced sampled value: state element -> value latched at the edge. */
    using Force = std::pair<StateElemId, bool>;

    /** Complete simulator state. */
    struct Snapshot
    {
        std::vector<uint8_t> netValues;
        std::vector<std::vector<uint64_t>> behavState;
        uint64_t cycle = 0;
    };

    explicit CycleSimulator(const Netlist &netlist);

    /** Reset: flops to their reset values, behavioral blocks reset,
     *  primary inputs to 0, combinational logic settled. */
    void reset();

    /** Drive a primary-input net (persists until changed). */
    void setInput(NetId id, bool value);

    /**
     * Advance one clock edge: sample every state element, apply
     * @p forces overrides, commit, and settle combinational logic.
     *
     * @param forces  sampled-value overrides applied at this edge.
     * @param sampled if non-null, receives the value each state element
     *                sampled at this edge (after forcing), indexed by
     *                StateElemId.
     */
    void step(std::span<const Force> forces = {},
              std::vector<uint8_t> *sampled = nullptr);

    /** Invert the stored value of a flop (particle-strike model). */
    void flipFlop(StateElemId id);

    /** Current value of a net. */
    bool value(NetId id) const { return netValues[id] != 0; }

    /** All current net values (indexed by NetId). */
    const std::vector<uint8_t> &netValues_() const { return netValues; }

    /** Cycles executed since reset. */
    uint64_t cycle() const { return cycleCount; }

    /** Capture the complete state. */
    Snapshot snapshot() const;

    /** Restore a previously captured state. */
    void restore(const Snapshot &snap);

    const Netlist &netlist() const { return *nl; }

    /**
     * This simulator's private instance of a behavioral model (cloned
     * from the netlist's prototype at construction).
     */
    BehavioralModel &behavModel(CellId id) const;

  private:
    /** Settle all combinational logic in topological order. */
    void evalComb();

    /** One step of the compiled combinational-evaluation program. */
    struct CombOp
    {
        CellType type;
        NetId in0;
        NetId in1;
        NetId in2;
        NetId out;
    };

    const Netlist *nl;
    std::vector<CombOp> combProgram;
    std::vector<uint8_t> netValues;
    uint64_t cycleCount = 0;

    /** Private clones of behavioral models, keyed like seqCells order. */
    std::unordered_map<CellId, BehavioralModelPtr> models;

    /** Scratch: per-state-element sampled values during step(). */
    std::vector<uint8_t> sampledScratch;
    std::vector<bool> behavIn;
    std::vector<bool> behavOut;
};

} // namespace davf

#endif // DAVF_SIM_CYCLE_SIM_HH
