#include "structure.hh"

#include "util/logging.hh"

namespace davf {

const Structure &
StructureRegistry::add(std::string name, const std::string &prefix)
{
    Structure structure;
    structure.name = std::move(name);
    structure.prefix = prefix;
    structure.wires = netlist->wiresByPrefix(prefix);
    structure.cells = netlist->cellsByPrefix(prefix);
    structure.flops = netlist->flopsByPrefix(prefix);
    davf_assert(!structure.cells.empty(),
                "structure prefix '", prefix, "' matches no cells");
    structures.push_back(std::move(structure));
    return structures.back();
}

const Structure *
StructureRegistry::find(const std::string &name) const
{
    for (const Structure &structure : structures) {
        if (structure.name == name)
            return &structure;
    }
    return nullptr;
}

} // namespace davf
