/**
 * @file
 * Tests for static timing analysis: hand-computed arrivals on a tiny
 * pipeline, path queries, statically-reachable-set semantics, and
 * monotonicity properties on random circuits.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "src/builder/builder.hh"
#include "src/timing/sta.hh"
#include "tests/helpers.hh"

namespace davf {
namespace {

/** ff1 -> INV -> ff2 with the default library. */
struct TinyPipe
{
    Netlist nl;
    NetId q1, inv_out, q2;
    WireId w_q1_inv, w_inv_ff2;

    TinyPipe()
    {
        ModuleBuilder b(nl);
        const NetId d1 = b.input("d1");
        q1 = b.dff(d1);
        inv_out = b.inv(q1);
        q2 = b.dff(inv_out);
        nl.finalize();
        w_q1_inv = nl.net(q1).firstWire;
        w_inv_ff2 = nl.net(inv_out).firstWire;
    }
};

TEST(Sta, HandComputedArrivals)
{
    TinyPipe c;
    const CellLibrary lib = CellLibrary::defaultLibrary();
    DelayModel delays(c.nl, lib);
    Sta sta(delays);

    // q1: DFF output, fanout 1 -> wire = 2 + 4*1 = 6; arrival = clkToQ.
    EXPECT_DOUBLE_EQ(sta.arrival(c.q1), 24.0);
    EXPECT_DOUBLE_EQ(delays.wireDelay(c.w_q1_inv), 6.0);
    // inv_out = 24 + 6 + 8 (INV intrinsic).
    EXPECT_DOUBLE_EQ(sta.arrival(c.inv_out), 38.0);
    // Path ends at ff2.D: 38 + 6 = 44 — the longest path in the design
    // (the d1 input arm is shorter).
    EXPECT_DOUBLE_EQ(sta.maxPath(), 44.0);
}

TEST(Sta, LongestPathThroughWire)
{
    TinyPipe c;
    DelayModel delays(c.nl, CellLibrary::defaultLibrary());
    Sta sta(delays);
    EXPECT_DOUBLE_EQ(sta.longestPathThrough(c.w_q1_inv), 44.0);
    EXPECT_DOUBLE_EQ(sta.longestPathThrough(c.w_inv_ff2), 44.0);
}

TEST(Sta, StaticallyReachableThreshold)
{
    TinyPipe c;
    DelayModel delays(c.nl, CellLibrary::defaultLibrary());
    Sta sta(delays);
    const double period = sta.maxPath();

    std::vector<StateElemId> reachable;
    // Zero extra delay: the path exactly meets timing, nothing reachable.
    sta.staticallyReachable(c.w_q1_inv, 0.0, period, reachable);
    EXPECT_TRUE(reachable.empty());
    // Any positive delay on the critical wire trips the endpoint.
    sta.staticallyReachable(c.w_q1_inv, 0.5, period, reachable);
    ASSERT_EQ(reachable.size(), 1u);
    EXPECT_EQ(reachable[0],
              c.nl.flopStateElem(c.nl.net(c.q2).driver));
}

TEST(Sta, StaticReachIgnoresLogicalMasking)
{
    // x AND 0 -> ff: statically reachable even though the output can
    // never toggle (§III / Fig. 2c: static analysis has no masking).
    Netlist nl;
    ModuleBuilder b(nl);
    const NetId d = b.freshNet("d");
    const NetId q = b.dff(d);
    b.connect(d, b.inv(q)); // Toggler.
    const NetId zero = b.constant(false);
    const NetId masked = b.and2(q, zero);
    const NetId q2 = b.dff(masked);
    (void)q2;
    nl.finalize();

    DelayModel delays(nl, CellLibrary::defaultLibrary());
    Sta sta(delays);
    // Find the wire q -> AND.
    const Net &qnet = nl.net(q);
    WireId wire = kInvalidId;
    for (uint32_t s = 0; s < qnet.sinks.size(); ++s) {
        if (nl.cell(qnet.sinks[s].cell).type == CellType::And2)
            wire = qnet.firstWire + s;
    }
    ASSERT_NE(wire, kInvalidId);

    std::vector<StateElemId> reachable;
    sta.staticallyReachable(wire, 0.9 * sta.maxPath(), sta.maxPath(),
                            reachable);
    EXPECT_FALSE(reachable.empty());
}

TEST(Sta, PathsNeverExceedMaxPath)
{
    const auto circuit = test::makeRandomCircuit(11, 16, 120);
    DelayModel delays(*circuit.netlist, CellLibrary::defaultLibrary());
    Sta sta(delays);
    double best = 0.0;
    for (WireId w = 0; w < circuit.netlist->numWires(); ++w) {
        const double through = sta.longestPathThrough(w);
        EXPECT_LE(through, sta.maxPath() + 1e-9);
        best = std::max(best, through);
    }
    // The critical path passes through at least one wire.
    EXPECT_NEAR(best, sta.maxPath(), 1e-9);
}

class StaRandom : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(StaRandom, ReachableSetGrowsWithDelay)
{
    const auto circuit = test::makeRandomCircuit(GetParam(), 10, 80);
    DelayModel delays(*circuit.netlist, CellLibrary::defaultLibrary());
    Sta sta(delays);
    const double period = sta.maxPath();

    std::vector<StateElemId> small_set, large_set;
    for (WireId w = 0; w < circuit.netlist->numWires(); w += 3) {
        sta.staticallyReachable(w, 0.2 * period, period, small_set);
        sta.staticallyReachable(w, 0.8 * period, period, large_set);
        // Monotone: everything reachable with the small delay is
        // reachable with the large delay (sets are sorted).
        EXPECT_TRUE(std::includes(large_set.begin(), large_set.end(),
                                  small_set.begin(), small_set.end()));
    }
}

TEST_P(StaRandom, ReachableMatchesPathArithmetic)
{
    // For wires that feed an endpoint *directly*, static reachability
    // must equal the simple arithmetic check on that single path.
    const auto circuit = test::makeRandomCircuit(GetParam() + 100, 8, 50);
    const Netlist &nl = *circuit.netlist;
    DelayModel delays(nl, CellLibrary::defaultLibrary());
    Sta sta(delays);
    const double period = sta.maxPath();
    const double d = 0.5 * period;

    std::vector<StateElemId> reachable;
    for (WireId w = 0; w < nl.numWires(); ++w) {
        const Sink &sink = nl.wireSink(w);
        const CellType type = nl.cell(sink.cell).type;
        if (type != CellType::Dff && type != CellType::Dffe)
            continue;
        sta.staticallyReachable(w, d, period, reachable);
        const double path =
            sta.arrival(nl.wire(w).net) + delays.wireDelay(w) + d;
        const bool want = path > period + 1e-9;
        const StateElemId elem = nl.flopStateElem(sink.cell);
        const bool got = std::binary_search(reachable.begin(),
                                            reachable.end(), elem);
        EXPECT_EQ(got, want);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StaRandom,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Sta, DanglingWireHasNoPath)
{
    Netlist nl;
    ModuleBuilder b(nl);
    const NetId in = b.input("in");
    const NetId used = b.inv(in);
    const NetId dangling = b.inv(used); // Feeds nothing.
    (void)dangling;
    const NetId q = b.dff(used);
    (void)q;
    nl.finalize();

    DelayModel delays(nl, CellLibrary::defaultLibrary());
    Sta sta(delays);
    // One of `used`'s two wires leads to the dangling INV.
    bool found_dead = false;
    for (uint32_t s = 0; s < nl.net(used).sinks.size(); ++s) {
        const WireId w = nl.net(used).firstWire + s;
        if (nl.cell(nl.wireSink(w).cell).type == CellType::Inv) {
            EXPECT_DOUBLE_EQ(sta.longestPathThrough(w), 0.0);
            std::vector<StateElemId> reachable;
            sta.staticallyReachable(w, sta.maxPath(), sta.maxPath(),
                                    reachable);
            EXPECT_TRUE(reachable.empty());
            found_dead = true;
        }
    }
    EXPECT_TRUE(found_dead);
}

TEST(DelayModel, WireDelayScalesWithFanout)
{
    Netlist nl;
    ModuleBuilder b(nl);
    const NetId in = b.input("in");
    const NetId one = b.inv(in); // Fanout 1 net: in.
    // Create a high-fanout net.
    const NetId hub = b.inv(one);
    for (int i = 0; i < 7; ++i)
        b.output("o" + std::to_string(i), b.inv(hub));
    nl.finalize();

    DelayModel delays(nl, CellLibrary::defaultLibrary());
    const WireId thin = nl.net(one).firstWire;
    const WireId fat = nl.net(hub).firstWire;
    EXPECT_GT(delays.wireDelay(fat), delays.wireDelay(thin));
}

} // namespace
} // namespace davf
