#include "json.hh"

#include <cctype>

namespace davf {

namespace {

/** Recursive-descent state over the input text. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : text(text) {}

    JsonCheck
    run()
    {
        skipWs();
        if (!value())
            return fail();
        skipWs();
        if (pos != text.size()) {
            error("trailing characters after JSON value");
            return fail();
        }
        JsonCheck check;
        check.valid = true;
        return check;
    }

  private:
    static constexpr size_t kMaxDepth = 256;

    std::string_view text;
    size_t pos = 0;
    size_t depth = 0;
    size_t err_pos = 0;
    std::string err_msg;

    bool
    error(const std::string &message)
    {
        // Keep the first (deepest-progress) error.
        if (err_msg.empty()) {
            err_pos = pos;
            err_msg = message;
        }
        return false;
    }

    JsonCheck
    fail() const
    {
        JsonCheck check;
        check.offset = err_pos;
        check.message = err_msg.empty() ? "malformed JSON" : err_msg;
        return check;
    }

    bool atEnd() const { return pos >= text.size(); }
    char peek() const { return text[pos]; }

    void
    skipWs()
    {
        while (!atEnd() && (peek() == ' ' || peek() == '\t'
                            || peek() == '\n' || peek() == '\r'))
            ++pos;
    }

    bool
    literal(std::string_view word)
    {
        if (text.substr(pos, word.size()) != word)
            return error("unrecognised token");
        pos += word.size();
        return true;
    }

    bool
    value()
    {
        if (atEnd())
            return error("unexpected end of input");
        if (++depth > kMaxDepth) {
            --depth;
            return error("nesting too deep");
        }
        bool ok = false;
        switch (peek()) {
          case '{': ok = object(); break;
          case '[': ok = array(); break;
          case '"': ok = string(); break;
          case 't': ok = literal("true"); break;
          case 'f': ok = literal("false"); break;
          case 'n': ok = literal("null"); break;
          default:  ok = number(); break;
        }
        --depth;
        return ok;
    }

    bool
    object()
    {
        ++pos; // '{'
        skipWs();
        if (!atEnd() && peek() == '}') {
            ++pos;
            return true;
        }
        while (true) {
            skipWs();
            if (atEnd() || peek() != '"')
                return error("expected object key string");
            if (!string())
                return false;
            skipWs();
            if (atEnd() || peek() != ':')
                return error("expected ':' after object key");
            ++pos;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (atEnd())
                return error("unterminated object");
            if (peek() == ',') {
                ++pos;
                continue;
            }
            if (peek() == '}') {
                ++pos;
                return true;
            }
            return error("expected ',' or '}' in object");
        }
    }

    bool
    array()
    {
        ++pos; // '['
        skipWs();
        if (!atEnd() && peek() == ']') {
            ++pos;
            return true;
        }
        while (true) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (atEnd())
                return error("unterminated array");
            if (peek() == ',') {
                ++pos;
                continue;
            }
            if (peek() == ']') {
                ++pos;
                return true;
            }
            return error("expected ',' or ']' in array");
        }
    }

    bool
    string()
    {
        ++pos; // '"'
        while (!atEnd()) {
            const unsigned char c = static_cast<unsigned char>(text[pos]);
            if (c == '"') {
                ++pos;
                return true;
            }
            if (c == '\\') {
                ++pos;
                if (atEnd())
                    return error("unterminated escape");
                const char esc = text[pos];
                if (esc == 'u') {
                    for (int i = 1; i <= 4; ++i) {
                        if (pos + i >= text.size()
                            || !std::isxdigit(static_cast<unsigned char>(
                                text[pos + i])))
                            return error("bad \\u escape");
                    }
                    pos += 4;
                } else if (esc != '"' && esc != '\\' && esc != '/'
                           && esc != 'b' && esc != 'f' && esc != 'n'
                           && esc != 'r' && esc != 't') {
                    return error("bad escape character");
                }
                ++pos;
                continue;
            }
            if (c < 0x20)
                return error("unescaped control character in string");
            ++pos;
        }
        return error("unterminated string");
    }

    bool
    number()
    {
        const size_t start = pos;
        if (!atEnd() && peek() == '-')
            ++pos;
        if (atEnd() || !std::isdigit(static_cast<unsigned char>(peek()))) {
            pos = start;
            // `NaN`, `inf`, `-inf` land here: minus sign (or nothing)
            // followed by a non-digit is not a JSON number.
            return error("invalid number (NaN/inf are not JSON)");
        }
        if (peek() == '0') {
            ++pos;
        } else {
            while (!atEnd()
                   && std::isdigit(static_cast<unsigned char>(peek())))
                ++pos;
        }
        if (!atEnd() && peek() == '.') {
            ++pos;
            if (atEnd() || !std::isdigit(static_cast<unsigned char>(peek())))
                return error("expected digits after decimal point");
            while (!atEnd()
                   && std::isdigit(static_cast<unsigned char>(peek())))
                ++pos;
        }
        if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
            ++pos;
            if (!atEnd() && (peek() == '+' || peek() == '-'))
                ++pos;
            if (atEnd() || !std::isdigit(static_cast<unsigned char>(peek())))
                return error("expected digits in exponent");
            while (!atEnd()
                   && std::isdigit(static_cast<unsigned char>(peek())))
                ++pos;
        }
        return true;
    }
};

} // namespace

JsonCheck
jsonValidate(std::string_view text)
{
    return Parser(text).run();
}

std::string
jsonPretty(std::string_view text)
{
    if (!jsonValidate(text))
        return std::string(text);

    std::string out;
    out.reserve(text.size() * 2);
    size_t indent = 0;
    bool inString = false;
    bool escaped = false;
    auto newline = [&](size_t level) {
        out += '\n';
        out.append(level * 2, ' ');
    };
    for (size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (inString) {
            out += c;
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                inString = false;
            continue;
        }
        switch (c) {
          case '"':
            inString = true;
            out += c;
            break;
          case '{':
          case '[': {
            // Keep empty containers on one line.
            size_t j = i + 1;
            while (j < text.size()
                   && std::isspace(static_cast<unsigned char>(text[j])))
                ++j;
            if (j < text.size() && text[j] == (c == '{' ? '}' : ']')) {
                out += c;
                out += text[j];
                i = j;
                break;
            }
            out += c;
            ++indent;
            newline(indent);
            break;
          }
          case '}':
          case ']':
            if (indent > 0)
                --indent;
            newline(indent);
            out += c;
            break;
          case ',':
            out += c;
            newline(indent);
            break;
          case ':':
            out += ": ";
            break;
          default:
            if (!std::isspace(static_cast<unsigned char>(c)))
                out += c;
            break;
        }
    }
    return out;
}

} // namespace davf
