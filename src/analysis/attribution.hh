/**
 * @file
 * The ISS/gate lockstep attribution tap (SamplingConfig::attribution).
 *
 * Maps gate-level cycles of an IbexMini golden run onto the RV32I ISS
 * instruction trajectory, so the vulnerability engine can tag every
 * injection cycle with the instruction in flight and walk each DelayACE
 * continuation forward to the *first architecturally corrupted
 * instruction* (docs/ANALYSIS.md).
 *
 * Preparation (lazy, once, thread-safe) builds two read-only tables:
 *
 *  1. The **ISS trajectory** S_0..S_n: after each instruction, the
 *     architectural signature (x1..x31, the RAM content hash of
 *     soc/memory.hh, and the output-trace length) plus the executed
 *     instruction's PC and disassembly.
 *  2. The **alignment** r[c] for every golden gate cycle c: the largest
 *     k such that the gate's architectural signature at cycle c matches
 *     S_k. It is computed by replaying the golden gate run once and
 *     eagerly advancing the cursor while the next state matches, so
 *     instructions invisible in the signature (branches, stores to the
 *     halt port) are skipped consistently; a gate state matching no
 *     trajectory state is a broken lockstep and throws
 *     DavfError{Internal}.
 *
 * A divergence walk starts at cursor r[cycle] and tracks a *faulty*
 * continuation with the same advance rule; the first gate state whose
 * signature matches neither S_cursor nor S_{cursor+1} names the first
 * corrupted instruction I_cursor, and the corrupted destination is the
 * first component disagreeing with both states ("x<n>", then "mem",
 * then "out", else "state"). Walks that never deviate resolve through
 * AttributionTap::WalkEnd (completion -> "out"/"uarch", watchdog ->
 * "uarch"). Everything is a pure function of (cycle, observed state),
 * so attribution tables are bit-identical across thread counts,
 * isolation modes, and resume.
 */

#ifndef DAVF_ANALYSIS_ATTRIBUTION_HH
#define DAVF_ANALYSIS_ATTRIBUTION_HH

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/vulnerability.hh"
#include "soc/ibex_mini.hh"
#include "soc/soc_workload.hh"

namespace davf::analysis {

/** The IbexMini/ISS lockstep attribution tap (see file comment). */
class SocAttribution : public AttributionTap
{
  public:
    /**
     * @param soc      the built SoC (netlist + register accessors).
     * @param workload its workload adapter (memory observation).
     * @param image    the program image the golden run executes.
     * All three must outlive the tap; nothing runs until the engine's
     * first attribution query (construction is free).
     */
    SocAttribution(const IbexMini &soc, const SocWorkload &workload,
                   std::vector<uint32_t> image);

    InFlight inFlight(uint64_t cycle) override;
    Walk beginWalk(uint64_t cycle) override;
    bool observe(Walk &walk, const CycleSimulator &sim) override;
    CycleAttribution::Event finish(Walk &walk, WalkEnd end) override;

    /** Trajectory length n (instructions executed); prepares. */
    uint64_t trajectoryLength();

  private:
    /** One trajectory state's architectural signature. */
    struct ArchState
    {
        std::array<uint32_t, 32> regs{};
        uint64_t memHash = 0;
        uint32_t outLen = 0;
    };

    /** The gate simulator's signature, observed on demand. */
    struct GateView
    {
        std::array<uint32_t, 32> regs{};
        uint64_t memHash = 0;
        const std::vector<uint32_t> *out = nullptr;
    };

    void prepare();
    void prepared();
    void readGate(const CycleSimulator &sim, GateView &view) const;
    bool matches(const GateView &view, size_t state) const;
    CycleAttribution::Event deviationEvent(const GateView &view,
                                           uint64_t cursor) const;

    const IbexMini *soc;
    const SocWorkload *workload;
    std::vector<uint32_t> image;

    std::once_flag once;

    /** @name Read-only after prepare() */
    /// @{
    std::vector<ArchState> states;    ///< S_0..S_n.
    std::vector<uint32_t> instrPc;    ///< PC of I_0..I_{n-1}.
    std::vector<std::string> instrText; ///< Disassembly of I_k.
    std::vector<uint32_t> issOut;     ///< Full golden output trace.
    std::vector<uint64_t> align;      ///< r[c] for c = 0..goldenN.
    /// @}
};

} // namespace davf::analysis

#endif // DAVF_ANALYSIS_ATTRIBUTION_HH
