#include "stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "logging.hh"

namespace davf {

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double total = 0.0;
    for (double value : values)
        total += value;
    return total / static_cast<double>(values.size());
}

double
geomean(const std::vector<double> &values, double floor)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double value : values)
        log_sum += std::log(std::max(value, floor));
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
maxOf(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double result = values.front();
    for (double value : values)
        result = std::max(result, value);
    return result;
}

Histogram::Histogram(double lo, double hi, size_t num_bins)
    : lo(lo), hi(hi), counts(num_bins, 0)
{
    davf_assert(hi > lo && num_bins > 0);
}

void
Histogram::add(double sample)
{
    if (std::isnan(sample)) {
        // NaN has no position on the axis; counting it into an edge bin
        // would silently skew the distribution.
        ++invalid;
        return;
    }
    // Clamp in the double domain: casting an out-of-range double (huge
    // samples, +/-inf, or anything past LONG_MAX after scaling) to an
    // integer type is undefined behaviour.
    const double unit = (sample - lo) / (hi - lo);
    const double scaled =
        std::clamp(unit * static_cast<double>(counts.size()), 0.0,
                   static_cast<double>(counts.size() - 1));
    const auto index = static_cast<size_t>(scaled);
    ++counts[index];
    ++total;
}

double
Histogram::binLo(size_t index) const
{
    return lo + (hi - lo) * static_cast<double>(index)
        / static_cast<double>(counts.size());
}

double
Histogram::binHi(size_t index) const
{
    return lo + (hi - lo) * static_cast<double>(index + 1)
        / static_cast<double>(counts.size());
}

double
Histogram::fraction(size_t index) const
{
    if (total == 0)
        return 0.0;
    return static_cast<double>(counts[index]) / static_cast<double>(total);
}

std::string
Histogram::render(const std::string &label) const
{
    std::string out = label + "\n";
    char line[128];
    for (size_t i = 0; i < counts.size(); ++i) {
        std::snprintf(line, sizeof(line), "  [%7.3f, %7.3f)  %7zu  %6.2f%%\n",
                      binLo(i), binHi(i), counts[i], 100.0 * fraction(i));
        out += line;
    }
    return out;
}

} // namespace davf
