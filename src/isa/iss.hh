/**
 * @file
 * Reference RV32I instruction-set simulator.
 *
 * Serves as the architectural golden model: benchmarks are validated on
 * it, and the gate-level IbexMini core is co-simulated against it (final
 * register file, data memory, output trace, and halt status must match).
 *
 * The memory map matches soc/memory.hh: RAM at [0, memBytes), an output
 * port at kMmioOut (each SW appends the stored word to the output trace),
 * and a halt port at kMmioHalt (any SW stops execution).
 */

#ifndef DAVF_ISA_ISS_HH
#define DAVF_ISA_ISS_HH

#include <cstdint>
#include <vector>

namespace davf {

/** Byte address of the output MMIO port. */
constexpr uint32_t kMmioOut = 0x00010000;

/** Byte address of the halt MMIO port. */
constexpr uint32_t kMmioHalt = 0x00010004;

/** Architectural RV32I interpreter. */
class Iss
{
  public:
    /**
     * Construct with a program image loaded at byte address 0.
     *
     * @param image     little-endian words (text + data).
     * @param mem_bytes RAM size in bytes (power of two, word multiple).
     */
    explicit Iss(const std::vector<uint32_t> &image,
                 uint32_t mem_bytes = 1u << 16);

    /** Execute one instruction (no-op once halted). */
    void step();

    /**
     * Run until halted or @p max_instructions executed.
     * @return true iff the program halted.
     */
    bool run(uint64_t max_instructions);

    bool halted() const { return isHalted; }
    uint32_t pc() const { return pcValue; }
    uint32_t reg(unsigned index) const { return regs[index]; }
    uint64_t instructionsExecuted() const { return instrCount; }

    /** Words stored to the output port, in order. */
    const std::vector<uint32_t> &outputTrace() const { return output; }

    /** RAM word at byte address @p addr (word aligned). */
    uint32_t memWord(uint32_t addr) const;

    /** All RAM words. */
    const std::vector<uint32_t> &memWords() const { return mem; }

  private:
    uint32_t load(uint32_t addr, unsigned size_log2, bool sign_extend);
    void store(uint32_t addr, uint32_t value, unsigned size_log2);

    std::vector<uint32_t> mem;
    uint32_t memBytes;
    uint32_t regs[32] = {};
    uint32_t pcValue = 0;
    bool isHalted = false;
    uint64_t instrCount = 0;
    std::vector<uint32_t> output;
};

} // namespace davf

#endif // DAVF_ISA_ISS_HH
