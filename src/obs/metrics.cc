#include "metrics.hh"

#include <chrono>
#include <mutex>
#include <sstream>

namespace davf::obs {

namespace detail {

size_t
threadStripe()
{
    // Hand out stripes round-robin at first use; a thread keeps its
    // stripe for life, so its adds never migrate between cache lines.
    static std::atomic<size_t> next{0};
    thread_local const size_t stripe =
        next.fetch_add(1, std::memory_order_relaxed) % kStripes;
    return stripe;
}

uint64_t
CounterState::total() const
{
    uint64_t sum = 0;
    for (const Stripe &stripe : stripes)
        sum += stripe.value.load(std::memory_order_relaxed);
    return sum;
}

void
CounterState::reset()
{
    for (Stripe &stripe : stripes)
        stripe.value.store(0, std::memory_order_relaxed);
}

void
HistogramState::observe(uint64_t sample)
{
    // Bucket by bit width: bucket 0 holds exact zeros, bucket b >= 1
    // holds samples in [2^(b-1), 2^b).
    size_t bucket = 0;
    for (uint64_t v = sample; v; v >>= 1)
        ++bucket;
    buckets[bucket].fetch_add(1, std::memory_order_relaxed);
    count.fetch_add(1, std::memory_order_relaxed);
    sum.fetch_add(sample, std::memory_order_relaxed);
}

void
HistogramState::reset()
{
    for (auto &bucket : buckets)
        bucket.store(0, std::memory_order_relaxed);
    count.store(0, std::memory_order_relaxed);
    sum.store(0, std::memory_order_relaxed);
}

} // namespace detail

std::atomic<bool> MetricsRegistry::collecting{false};

/**
 * Name -> state maps. std::map nodes never move, so handles can cache
 * raw state pointers for the process lifetime; the transparent
 * comparator lets registration look up by string_view without an
 * allocation on the hit path.
 */
struct MetricsRegistry::Impl {
    mutable std::mutex mutex;
    std::map<std::string, detail::CounterState, std::less<>> counters;
    std::map<std::string, detail::GaugeState, std::less<>> gauges;
    std::map<std::string, detail::HistogramState, std::less<>> histograms;
};

MetricsRegistry &
MetricsRegistry::instance()
{
    // Leaked on purpose: metric handles are function-local statics whose
    // destruction order relative to the registry is otherwise unsequenced.
    static MetricsRegistry *const registry = new MetricsRegistry();
    return *registry;
}

MetricsRegistry::Impl &
MetricsRegistry::impl() const
{
    static Impl *const state = new Impl();
    return *state;
}

void
MetricsRegistry::setEnabled(bool on)
{
    collecting.store(on, std::memory_order_relaxed);
}

detail::CounterState *
MetricsRegistry::counter(std::string_view name)
{
    Impl &state = impl();
    std::lock_guard<std::mutex> lock(state.mutex);
    auto it = state.counters.find(name);
    if (it == state.counters.end())
        it = state.counters.try_emplace(std::string(name)).first;
    return &it->second;
}

detail::GaugeState *
MetricsRegistry::gauge(std::string_view name)
{
    Impl &state = impl();
    std::lock_guard<std::mutex> lock(state.mutex);
    auto it = state.gauges.find(name);
    if (it == state.gauges.end())
        it = state.gauges.try_emplace(std::string(name)).first;
    return &it->second;
}

detail::HistogramState *
MetricsRegistry::histogram(std::string_view name)
{
    Impl &state = impl();
    std::lock_guard<std::mutex> lock(state.mutex);
    auto it = state.histograms.find(name);
    if (it == state.histograms.end())
        it = state.histograms.try_emplace(std::string(name)).first;
    return &it->second;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    const Impl &state = impl();
    std::lock_guard<std::mutex> lock(state.mutex);
    MetricsSnapshot snap;
    for (const auto &[name, counter] : state.counters)
        snap.counters.emplace(name, counter.total());
    for (const auto &[name, gauge] : state.gauges)
        snap.gauges.emplace(name,
                            gauge.value.load(std::memory_order_relaxed));
    for (const auto &[name, hist] : state.histograms) {
        HistogramSnapshot h;
        h.count = hist.count.load(std::memory_order_relaxed);
        h.sum = hist.sum.load(std::memory_order_relaxed);
        for (size_t i = 0; i < kHistBuckets; ++i)
            h.buckets[i] = hist.buckets[i].load(std::memory_order_relaxed);
        snap.histograms.emplace(name, h);
    }
    return snap;
}

void
MetricsRegistry::reset()
{
    Impl &state = impl();
    std::lock_guard<std::mutex> lock(state.mutex);
    for (auto &[name, counter] : state.counters)
        counter.reset();
    for (auto &[name, gauge] : state.gauges)
        gauge.value.store(0, std::memory_order_relaxed);
    for (auto &[name, hist] : state.histograms)
        hist.reset();
}

std::string
MetricsSnapshot::toJson() const
{
    std::ostringstream os;
    os << "{\"schema\":\"davf-metrics v1\"";
    os << ",\"counters\":{";
    bool first = true;
    for (const auto &[name, value] : counters) {
        os << (first ? "" : ",") << "\"" << name << "\":" << value;
        first = false;
    }
    os << "},\"gauges\":{";
    first = true;
    for (const auto &[name, value] : gauges) {
        os << (first ? "" : ",") << "\"" << name << "\":" << value;
        first = false;
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto &[name, hist] : histograms) {
        os << (first ? "" : ",") << "\"" << name << "\":{\"count\":"
           << hist.count << ",\"sum\":" << hist.sum << ",\"buckets\":[";
        bool first_bucket = true;
        for (size_t b = 0; b < kHistBuckets; ++b) {
            if (!hist.buckets[b])
                continue; // Sparse: most of the 65 buckets are empty.
            const uint64_t bucket_lo = b == 0 ? 0 : uint64_t(1) << (b - 1);
            const uint64_t bucket_hi =
                b == 0 ? 0 : b == 64 ? ~uint64_t(0) : (uint64_t(1) << b) - 1;
            os << (first_bucket ? "" : ",") << "[" << bucket_lo << ","
               << bucket_hi << "," << hist.buckets[b] << "]";
            first_bucket = false;
        }
        os << "]}";
        first = false;
    }
    os << "}}";
    return os.str();
}

uint64_t
ScopedTimeNs::nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace davf::obs
