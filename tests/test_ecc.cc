/**
 * @file
 * Tests for the SEC Hamming ECC: soft-model round trips, exhaustive
 * single-error correction, gate-level equivalence with the soft model,
 * and the crucial (for Fig. 10/11 and Table III) property that multi-bit
 * errors escape or mis-correct silently.
 */

#include <gtest/gtest.h>

#include "src/builder/ecc.hh"
#include "src/sim/cycle_sim.hh"
#include "src/util/rng.hh"

namespace davf {
namespace {

TEST(EccSoft, ParityBitCounts)
{
    EXPECT_EQ(eccParityBits(4), 3u);
    EXPECT_EQ(eccParityBits(8), 4u);
    EXPECT_EQ(eccParityBits(11), 4u);
    EXPECT_EQ(eccParityBits(26), 5u);
    EXPECT_EQ(eccParityBits(32), 6u);
    EXPECT_EQ(eccCodeWidth(32), 38u);
}

TEST(EccSoft, RoundTrip)
{
    Rng rng(1);
    for (int trial = 0; trial < 500; ++trial) {
        const uint32_t data = rng.next32();
        const uint64_t code = eccEncodeSoft(data, 32);
        EXPECT_EQ(eccCorrectSoft(code, 32), data);
    }
}

TEST(EccSoft, CorrectsEverySingleBitError)
{
    Rng rng(2);
    for (int trial = 0; trial < 20; ++trial) {
        const uint32_t data = rng.next32();
        const uint64_t code = eccEncodeSoft(data, 32);
        for (unsigned pos = 0; pos < eccCodeWidth(32); ++pos) {
            const uint64_t corrupted = code ^ (uint64_t{1} << pos);
            EXPECT_EQ(eccCorrectSoft(corrupted, 32), data)
                << "flip at position " << pos;
        }
    }
}

TEST(EccSoft, DoubleErrorsAreSilentlyWrong)
{
    // No double-error detection (matches the paper's setup): at least
    // some double errors must decode to the wrong data with no signal.
    const uint32_t data = 0xdeadbeef;
    const uint64_t code = eccEncodeSoft(data, 32);
    int wrong = 0;
    for (unsigned i = 0; i < 8; ++i) {
        for (unsigned j = i + 1; j < 8; ++j) {
            const uint64_t corrupted =
                code ^ (uint64_t{1} << i) ^ (uint64_t{1} << j);
            if (eccCorrectSoft(corrupted, 32) != data)
                ++wrong;
        }
    }
    EXPECT_GT(wrong, 0);
}

TEST(EccSoft, SmallWidths)
{
    for (unsigned width : {4u, 8u, 16u}) {
        Rng rng(width);
        for (int trial = 0; trial < 50; ++trial) {
            const uint64_t data = rng.next() & ((uint64_t{1} << width) - 1);
            const uint64_t code = eccEncodeSoft(data, width);
            EXPECT_EQ(eccCorrectSoft(code, width), data);
            for (unsigned pos = 0; pos < eccCodeWidth(width); ++pos) {
                EXPECT_EQ(eccCorrectSoft(code ^ (uint64_t{1} << pos),
                                         width),
                          data);
            }
        }
    }
}

/** Gate-level encoder + corrector pair driven by input buses. */
class EccGateLevel : public ::testing::Test
{
  protected:
    Netlist nl;
    ModuleBuilder b{nl};
    Bus data_in, code_in, encoded, corrected;
    std::unique_ptr<CycleSimulator> sim;

    void
    SetUp() override
    {
        data_in = b.inputBus("d", 32);
        code_in = b.inputBus("c", 38);
        encoded = eccEncode(b, data_in);
        corrected = eccCorrect(b, code_in, 32);
        nl.finalize();
        sim = std::make_unique<CycleSimulator>(nl);
    }

    uint64_t
    read(const Bus &bus)
    {
        uint64_t value = 0;
        for (size_t i = 0; i < bus.size(); ++i)
            value |= uint64_t{sim->value(bus[i])} << i;
        return value;
    }

    void
    driveData(uint32_t value)
    {
        for (unsigned i = 0; i < 32; ++i)
            sim->setInput(data_in[i], (value >> i) & 1);
    }

    void
    driveCode(uint64_t value)
    {
        for (unsigned i = 0; i < 38; ++i)
            sim->setInput(code_in[i], (value >> i) & 1);
    }
};

TEST_F(EccGateLevel, EncoderMatchesSoftModel)
{
    Rng rng(3);
    for (int trial = 0; trial < 100; ++trial) {
        const uint32_t data = rng.next32();
        driveData(data);
        EXPECT_EQ(read(encoded), eccEncodeSoft(data, 32));
    }
}

TEST_F(EccGateLevel, CorrectorMatchesSoftModel)
{
    Rng rng(4);
    for (int trial = 0; trial < 100; ++trial) {
        const uint32_t data = rng.next32();
        uint64_t code = eccEncodeSoft(data, 32);
        if (rng.chance(0.7))
            code ^= uint64_t{1} << rng.below(38); // Single error.
        driveCode(code);
        EXPECT_EQ(read(corrected), eccCorrectSoft(code, 32));
    }
}

TEST_F(EccGateLevel, EndToEndSingleErrorCorrection)
{
    Rng rng(5);
    for (int trial = 0; trial < 40; ++trial) {
        const uint32_t data = rng.next32();
        driveData(data);
        uint64_t code = read(encoded);
        code ^= uint64_t{1} << rng.below(38);
        driveCode(code);
        EXPECT_EQ(read(corrected), data);
    }
}

} // namespace
} // namespace davf
