#include "vec_sim.hh"

#include "util/logging.hh"

namespace davf {

namespace {

/** Broadcast a scalar 0/1 byte to a full lane word. */
inline uint64_t
broadcast(uint8_t value)
{
    return value ? ~uint64_t{0} : 0;
}

} // namespace

VecSimulator::VecSimulator(const Netlist &netlist, unsigned max_lanes)
    : nl(&netlist), laneCap(max_lanes), laneCount(max_lanes)
{
    davf_assert(netlist.finalized(), "simulator requires finalize()");
    davf_assert(max_lanes >= 2 && max_lanes <= kMaxLanes,
                "lane count ", max_lanes, " outside [2, ", kMaxLanes,
                "]");
    netWords.assign(netlist.numNets(), 0);
    sampledWords.assign(netlist.numStateElems(), 0);

    for (CellId id : netlist.seqCells()) {
        if (netlist.cell(id).type != CellType::Behav)
            continue;
        std::vector<BehavioralModelPtr> clones;
        clones.reserve(laneCap);
        for (unsigned lane = 0; lane < laneCap; ++lane)
            clones.push_back(netlist.behavModel(id)->clone());
        models.emplace(id, std::move(clones));
    }

    combProgram.reserve(netlist.topoOrder().size());
    for (CellId id : netlist.topoOrder()) {
        const Cell &cell = netlist.cell(id);
        CombOp op;
        op.type = cell.type;
        op.in0 = cell.inputs[0];
        op.in1 = cell.inputs.size() > 1 ? cell.inputs[1] : cell.inputs[0];
        op.in2 = cell.inputs.size() > 2 ? cell.inputs[2] : cell.inputs[0];
        op.out = cell.outputs[0];
        combProgram.push_back(op);
    }

    reset();
}

void
VecSimulator::reset()
{
    const Netlist &netlist = *nl;
    std::fill(netWords.begin(), netWords.end(), 0);
    laneCount = laneCap;

    for (CellId id = 0; id < netlist.numCells(); ++id) {
        const Cell &cell = netlist.cell(id);
        switch (cell.type) {
          case CellType::Const1:
            netWords[cell.outputs[0]] = ~uint64_t{0};
            break;
          case CellType::Dff:
          case CellType::Dffe:
            netWords[cell.outputs[0]] = broadcast(cell.resetValue);
            break;
          case CellType::Behav: {
            std::vector<BehavioralModelPtr> &clones = models.at(id);
            for (unsigned lane = 0; lane < laneCap; ++lane) {
                behavOut.assign(cell.outputs.size(), false);
                clones[lane]->reset(behavOut);
                for (size_t pin = 0; pin < cell.outputs.size(); ++pin) {
                    const uint64_t bit = uint64_t{1} << lane;
                    if (behavOut[pin])
                        netWords[cell.outputs[pin]] |= bit;
                    else
                        netWords[cell.outputs[pin]] &= ~bit;
                }
            }
            break;
          }
          default:
            break;
        }
    }

    cycleCount = 0;
    evalComb();
}

void
VecSimulator::seed(const CycleSimulator::Snapshot &snap,
                   unsigned num_lanes)
{
    davf_assert(snap.netValues.size() == netWords.size(),
                "snapshot from a different netlist");
    davf_assert(num_lanes >= 1 && num_lanes <= laneCap,
                "seed lane count ", num_lanes, " outside [1, ", laneCap,
                "]");
    laneCount = num_lanes;
    for (size_t i = 0; i < netWords.size(); ++i)
        netWords[i] = broadcast(snap.netValues[i]);
    cycleCount = snap.cycle;

    size_t behav_index = 0;
    for (CellId id : nl->seqCells()) {
        if (nl->cell(id).type != CellType::Behav)
            continue;
        const std::vector<uint64_t> &state =
            snap.behavState[behav_index++];
        std::vector<BehavioralModelPtr> &clones = models.at(id);
        for (unsigned lane = 0; lane < num_lanes; ++lane)
            clones[lane]->restore(state);
    }
}

void
VecSimulator::setInput(NetId id, LaneMask value_bits)
{
    const Netlist &netlist = *nl;
    davf_assert(netlist.cell(netlist.net(id).driver).type
                    == CellType::Input,
                "setInput on non-input net ", netlist.net(id).name);
    netWords[id] = value_bits;
    evalComb();
}

void
VecSimulator::step(std::span<const LaneForce> forces,
                   LaneMask behav_lanes)
{
    const Netlist &netlist = *nl;

    // Phase 1: sample every state element, all lanes at once.
    for (StateElemId id = 0; id < netlist.numStateElems(); ++id) {
        const StateElem &elem = netlist.stateElem(id);
        const Cell &cell = netlist.cell(elem.cell);
        uint64_t value = 0;
        switch (elem.kind) {
          case StateElemKind::Flop:
            if (cell.type == CellType::Dff) {
                value = netWords[cell.inputs[0]];
            } else { // Dffe: Q' = EN ? D : Q, lanewise.
                const uint64_t en = netWords[cell.inputs[1]];
                value = (en & netWords[cell.inputs[0]])
                    | (~en & netWords[cell.outputs[0]]);
            }
            break;
          case StateElemKind::BehavInput:
            value = netWords[cell.inputs[elem.pin]];
            break;
          case StateElemKind::OutputPort:
            value = netWords[cell.inputs[0]];
            break;
        }
        sampledWords[id] = value;
    }

    // Phase 2: per-lane forced sampled values (fault injection).
    for (const LaneForce &force : forces) {
        const uint64_t bit = uint64_t{1} << force.lane;
        if (force.value)
            sampledWords[force.elem] |= bit;
        else
            sampledWords[force.elem] &= ~bit;
    }

    // Phase 3: commit. Flops take their sampled words; behavioral
    // blocks are clocked lane by lane — but only live lanes: retired
    // lanes' models (and their output-net bits) stay frozen.
    for (CellId id : netlist.seqCells()) {
        const Cell &cell = netlist.cell(id);
        if (cell.type == CellType::Behav) {
            std::vector<BehavioralModelPtr> &clones = models.at(id);
            for (unsigned lane = 0; lane < laneCount; ++lane) {
                const uint64_t bit = uint64_t{1} << lane;
                if (!(behav_lanes & bit))
                    continue;
                behavIn.assign(cell.inputs.size(), false);
                for (uint16_t pin = 0; pin < cell.inputs.size(); ++pin) {
                    behavIn[pin] =
                        (sampledWords[netlist.pinStateElem(id, pin)]
                         & bit)
                        != 0;
                }
                behavOut.assign(cell.outputs.size(), false);
                clones[lane]->clockEdge(behavIn, behavOut);
                for (size_t pin = 0; pin < cell.outputs.size(); ++pin) {
                    if (behavOut[pin])
                        netWords[cell.outputs[pin]] |= bit;
                    else
                        netWords[cell.outputs[pin]] &= ~bit;
                }
            }
        } else {
            netWords[cell.outputs[0]] =
                sampledWords[netlist.flopStateElem(id)];
        }
    }

    evalComb();
    ++cycleCount;
}

void
VecSimulator::flipFlop(StateElemId id, LaneMask lanes_bits)
{
    const Netlist &netlist = *nl;
    const StateElem &elem = netlist.stateElem(id);
    davf_assert(elem.kind == StateElemKind::Flop,
                "flipFlop on non-flop state element");
    const NetId q = netlist.cell(elem.cell).outputs[0];
    netWords[q] ^= lanes_bits;
    evalComb();
}

VecSimulator::LaneMask
VecSimulator::divergedLanes(std::span<const NetId> nets,
                            std::span<const uint8_t> golden) const
{
    davf_assert(nets.size() == golden.size(),
                "divergedLanes: nets/golden size mismatch");
    uint64_t diff = 0;
    for (size_t i = 0; i < nets.size(); ++i)
        diff |= netWords[nets[i]] ^ broadcast(golden[i]);
    return diff;
}

BehavioralModel &
VecSimulator::behavModel(CellId id, unsigned lane) const
{
    davf_assert(lane < laneCap, "lane ", lane, " out of range");
    return *models.at(id)[lane];
}

void
VecSimulator::evalComb()
{
    uint64_t *values = netWords.data();
    for (const CombOp &op : combProgram) {
        uint64_t result;
        switch (op.type) {
          case CellType::Buf:
            result = values[op.in0];
            break;
          case CellType::Inv:
            result = ~values[op.in0];
            break;
          case CellType::And2:
            result = values[op.in0] & values[op.in1];
            break;
          case CellType::Or2:
            result = values[op.in0] | values[op.in1];
            break;
          case CellType::Nand2:
            result = ~(values[op.in0] & values[op.in1]);
            break;
          case CellType::Nor2:
            result = ~(values[op.in0] | values[op.in1]);
            break;
          case CellType::Xor2:
            result = values[op.in0] ^ values[op.in1];
            break;
          case CellType::Xnor2:
            result = ~(values[op.in0] ^ values[op.in1]);
            break;
          case CellType::Mux2: {
            const uint64_t sel = values[op.in2];
            result = (sel & values[op.in1]) | (~sel & values[op.in0]);
            break;
          }
          default:
            result = 0;
            davf_panic("non-combinational cell in topo order");
        }
        values[op.out] = result;
    }
}

} // namespace davf
