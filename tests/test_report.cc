/**
 * @file
 * Tests for result serialization (CSV and JSON reports).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "src/core/report.hh"

namespace davf {
namespace {

DelayAvfResult
sampleResult()
{
    DelayAvfResult result;
    result.delayAvf = 0.125;
    result.orDelayAvf = 0.0625;
    result.staticWireFraction = 0.75;
    result.dynamicWireFraction = 0.5;
    result.groupAceWireFraction = 0.25;
    result.injections = 800;
    result.staticInjections = 600;
    result.errorInjections = 200;
    result.multiBitInjections = 40;
    result.delayAceInjections = 100;
    result.sdc = 70;
    result.due = 30;
    result.aceInterference = 5;
    result.aceCompounding = 3;
    result.wiresInjected = 100;
    result.cyclesInjected = 8;
    return result;
}

TEST(Report, CsvHeaderAndRowFieldCountsMatch)
{
    const std::string header = delayAvfCsvHeader();
    const std::string row =
        delayAvfCsvRow("md5", "ALU", 0.5, sampleResult());
    const auto count_commas = [](const std::string &text) {
        return std::count(text.begin(), text.end(), ',');
    };
    EXPECT_EQ(count_commas(header), count_commas(row));
    EXPECT_NE(row.find("md5,ALU,0.5,0.125"), std::string::npos);
    EXPECT_NE(row.find(",70,30,"), std::string::npos); // sdc, due.
}

TEST(Report, SavfCsv)
{
    SavfResult savf;
    savf.savf = 0.25;
    savf.injections = 400;
    savf.aceInjections = 100;
    savf.sdc = 60;
    savf.due = 40;
    const std::string header = savfCsvHeader();
    const std::string row = savfCsvRow("bubblesort", "Regfile", savf);
    EXPECT_EQ(std::count(header.begin(), header.end(), ','),
              std::count(row.begin(), row.end(), ','));
    EXPECT_EQ(row, "bubblesort,Regfile,0.25,400,100,60,40");
}

TEST(Report, JsonIsWellFormedEnough)
{
    const std::string json =
        delayAvfJson("md5", "ALU", 0.5, sampleResult());
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_NE(json.find("\"delayavf\":0.125"), std::string::npos);
    EXPECT_NE(json.find("\"sdc\":70"), std::string::npos);

    SavfResult savf;
    savf.savf = 1.0;
    savf.injections = 4;
    savf.aceInjections = 4;
    savf.sdc = 4;
    const std::string savf_json = savfJson("x", "y", savf);
    EXPECT_NE(savf_json.find("\"savf\":1"), std::string::npos);
}

TEST(Report, LabelsAreSanitized)
{
    // Commas and newlines in labels must not corrupt the CSV framing.
    const std::string row =
        savfCsvRow("evil,label\n", "str\"uct", SavfResult{});
    EXPECT_EQ(std::count(row.begin(), row.end(), ','), 6);
    EXPECT_EQ(row.find('\n'), std::string::npos);
}

} // namespace
} // namespace davf
