/**
 * @file
 * Legacy-to-index store migration (`davf_store migrate`).
 *
 * migrateStore() absorbs every legacy per-file record (`r-*.rec`) in a
 * store directory into the indexed tier, preserving record bytes
 * exactly (the segment file stores the same v2 text), then removes the
 * absorbed legacy file. Damaged legacy records are quarantined into
 * `<dir>/quarantine/` — never deleted. The pass is idempotent and
 * crash-safe: a record's legacy file is unlinked only after its frame
 * is durable in the segment file, so killing a migration anywhere
 * leaves a directory where lookups still find every record (index
 * first, legacy fallback second) and a rerun finishes the job.
 *
 * The per-record `index.migrate` crash point makes migration part of
 * the kill-anywhere matrix; `store.index.migrated_records` /
 * `store.index.migrate_remaining` report progress to the obs registry.
 */

#ifndef DAVF_STORE_MIGRATE_HH
#define DAVF_STORE_MIGRATE_HH

#include <cstdint>
#include <string>

namespace davf::store {

/** What one migration pass did. */
struct MigrateReport
{
    uint64_t migrated = 0;    ///< Legacy records absorbed + unlinked.
    uint64_t alreadyIndexed = 0; ///< Skipped: index already serves them.
    uint64_t quarantined = 0; ///< Damaged legacy records moved aside.
    uint64_t foreign = 0;     ///< Non-record entries left untouched.

    bool clean() const { return true; }
};

/**
 * Migrate the store directory @p dir (see file comment). Creates the
 * indexed tier if absent. Throws DavfError{Io} if the directory (or
 * the index lock) is unusable.
 */
MigrateReport migrateStore(const std::string &dir);

} // namespace davf::store

#endif // DAVF_STORE_MIGRATE_HH
