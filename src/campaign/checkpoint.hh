/**
 * @file
 * The campaign journal: a versioned, human-readable checkpoint of a
 * sweep's progress, written atomically (tmp + rename) after every
 * completed cell and every completed injection cycle of the in-flight
 * cell.
 *
 * Contents (see docs/ROBUSTNESS.md for the line grammar):
 *  - a version stamp and the campaign's config hash (a resume against a
 *    different configuration is rejected);
 *  - one record per completed (kind, benchmark, structure, delay) cell
 *    with its full aggregate result — doubles are serialized as C
 *    hexfloats ("%a"), so a resumed campaign reproduces aggregates
 *    bit-identically without re-simulation;
 *  - at most one partial cell: the per-injection-cycle outcomes that
 *    completed before the interruption. Cycles are mutually independent
 *    in the engine, so adopting them on resume is exact.
 */

#ifndef DAVF_CAMPAIGN_CHECKPOINT_HH
#define DAVF_CAMPAIGN_CHECKPOINT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/vulnerability.hh"
#include "util/error.hh"

namespace davf {

/** Identity of one campaign cell. @c delay is canonicalDelay() text. */
struct CheckpointKey
{
    std::string kind; ///< "davf" or "savf".
    std::string benchmark;
    std::string structure;
    std::string delay;

    bool operator==(const CheckpointKey &) const = default;
};

/** One completed (or permanently failed) cell. */
struct CheckpointCell
{
    CheckpointKey key;
    bool failed = false;
    std::string failReason;     ///< Only when failed.
    DelayAvfResult davf;        ///< Valid when kind == "davf" && !failed.
    SavfResult savf;            ///< Valid when kind == "savf" && !failed.
};

/** The whole journal. */
struct Checkpoint
{
    static constexpr uint32_t kVersion = 1;

    std::string configHash;
    std::vector<CheckpointCell> cells;

    bool hasPartial = false;
    CheckpointKey partialKey;
    std::vector<InjectionCycleOutcome> partialCycles;

    const CheckpointCell *find(const CheckpointKey &key) const;
};

/** Canonical exact text form of a delay fraction (C hexfloat). */
std::string canonicalDelay(double delay);

/** Serialize to the journal text form. */
std::string serializeCheckpoint(const Checkpoint &checkpoint);

/** Parse journal text; corrupt or version-mismatched input is an Err. */
Result<Checkpoint> parseCheckpoint(const std::string &text);

/** Atomically write @p checkpoint to @p path (DavfError{Io} on failure). */
void saveCheckpoint(const std::string &path, const Checkpoint &checkpoint);

/** Load and parse @p path. */
Result<Checkpoint> loadCheckpoint(const std::string &path);

} // namespace davf

#endif // DAVF_CAMPAIGN_CHECKPOINT_HH
