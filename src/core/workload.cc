#include "workload.hh"

#include "util/logging.hh"

namespace davf {

TraceSinkModel::TraceSinkModel(unsigned data_bits) : dataBits(data_bits)
{
    davf_assert(data_bits >= 1 && data_bits <= 32,
                "trace sink width out of range");
}

void
TraceSinkModel::reset(std::vector<bool> &outputs)
{
    log.clear();
    outputs.clear();
}

void
TraceSinkModel::clockEdge(const std::vector<bool> &inputs,
                          std::vector<bool> &outputs)
{
    if (inputs[dataBits]) {
        uint32_t word = 0;
        for (unsigned i = 0; i < dataBits; ++i)
            word |= uint32_t{inputs[i]} << i;
        log.push_back(word);
    }
    outputs.clear();
}

std::vector<uint64_t>
TraceSinkModel::snapshot() const
{
    std::vector<uint64_t> data;
    data.reserve(log.size() + 1);
    data.push_back(log.size());
    for (uint32_t word : log)
        data.push_back(word);
    return data;
}

void
TraceSinkModel::restore(const std::vector<uint64_t> &data)
{
    log.resize(static_cast<size_t>(data[0]));
    for (size_t i = 0; i < log.size(); ++i)
        log[i] = static_cast<uint32_t>(data[i + 1]);
}

bool
Workload::done(const VecSimulator &, unsigned) const
{
    davf_panic("workload is not vectorizable");
}

std::vector<uint32_t>
Workload::outputTrace(const VecSimulator &, unsigned) const
{
    davf_panic("workload is not vectorizable");
}

std::vector<uint32_t>
TraceWorkload::outputTrace(const CycleSimulator &sim) const
{
    const auto &sink =
        static_cast<const TraceSinkModel &>(sim.behavModel(sinkCell));
    return sink.trace();
}

std::vector<uint32_t>
TraceWorkload::outputTrace(const VecSimulator &sim, unsigned lane) const
{
    const auto &sink = static_cast<const TraceSinkModel &>(
        sim.behavModel(sinkCell, lane));
    return sink.trace();
}

} // namespace davf
