#include "checkpoint.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/atomic_file.hh"
#include "util/crashpoint.hh"
#include "util/logging.hh"

namespace davf {

namespace {

/** Journal tokens are space-separated: reject names that would split. */
void
checkToken(const std::string &token, const char *what)
{
    if (token.empty()
        || token.find_first_of(" \t\n\r") != std::string::npos) {
        davf_throw(ErrorKind::BadArgument, "checkpoint ", what, " '",
                   token, "' is empty or contains whitespace");
    }
}

std::string
doubleToText(double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%a", value);
    return buffer;
}

bool
textToDouble(const std::string &text, double &out)
{
    const char *begin = text.c_str();
    char *end = nullptr;
    out = std::strtod(begin, &end);
    return end == begin + text.size() && !text.empty();
}

/**
 * Percent-encode arbitrary text (instruction mnemonics like
 * "lw x1, 8(x2)") into a single whitespace-free journal token. Plain
 * characters pass through; everything else becomes %XX. The empty
 * string encodes as a lone "%" (no plain character maps to it).
 */
std::string
encodeText(const std::string &text)
{
    static const char hex[] = "0123456789ABCDEF";
    if (text.empty())
        return "%";
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        const auto u = static_cast<unsigned char>(c);
        const bool plain = (u >= '0' && u <= '9')
            || (u >= 'A' && u <= 'Z') || (u >= 'a' && u <= 'z')
            || u == '_' || u == '.' || u == '(' || u == ')' || u == '+'
            || u == '-';
        if (plain) {
            out += c;
        } else {
            out += '%';
            out += hex[u >> 4];
            out += hex[u & 15];
        }
    }
    return out;
}

/** Inverse of encodeText(); false for malformed escapes. */
bool
decodeText(const std::string &token, std::string &out)
{
    out.clear();
    if (token == "%")
        return true;
    for (size_t i = 0; i < token.size(); ++i) {
        if (token[i] != '%') {
            out += token[i];
            continue;
        }
        if (i + 2 >= token.size())
            return false;
        auto nibble = [](char c) -> int {
            if (c >= '0' && c <= '9')
                return c - '0';
            if (c >= 'A' && c <= 'F')
                return c - 'A' + 10;
            return -1;
        };
        const int hi = nibble(token[i + 1]);
        const int lo = nibble(token[i + 2]);
        if (hi < 0 || lo < 0)
            return false;
        out += static_cast<char>((hi << 4) | lo);
        i += 2;
    }
    return true;
}

void
writeKey(std::ostream &os, const CheckpointKey &key)
{
    os << key.kind << ' ' << key.benchmark << ' ' << key.structure << ' '
       << key.delay;
}

bool
readKey(std::istream &is, CheckpointKey &key)
{
    return static_cast<bool>(is >> key.kind >> key.benchmark
                                >> key.structure >> key.delay);
}

void
writeSkipReasons(std::ostream &os,
                 const std::map<std::string, uint64_t> &reasons)
{
    os << ' ' << reasons.size();
    for (const auto &[reason, count] : reasons)
        os << ' ' << reason << ' ' << count;
}

bool
readSkipReasons(std::istream &is,
                std::map<std::string, uint64_t> &reasons)
{
    size_t count = 0;
    if (!(is >> count) || count > 1024)
        return false;
    for (size_t i = 0; i < count; ++i) {
        std::string reason;
        uint64_t tally = 0;
        if (!(is >> reason >> tally))
            return false;
        reasons[reason] = tally;
    }
    return true;
}

void
writeBits(std::ostream &os, const std::vector<uint8_t> &bits)
{
    os << ' ';
    if (bits.empty()) {
        os << '-';
        return;
    }
    for (uint8_t bit : bits)
        os << (bit ? '1' : '0');
}

bool
readBits(std::istream &is, std::vector<uint8_t> &bits)
{
    std::string text;
    if (!(is >> text))
        return false;
    bits.clear();
    if (text == "-")
        return true;
    bits.reserve(text.size());
    for (char c : text) {
        if (c != '0' && c != '1')
            return false;
        bits.push_back(c == '1' ? 1 : 0);
    }
    return true;
}

/**
 * The optional per-outcome attribution section — written only when
 * attribution ran, so attribution-off journals stay byte-identical to
 * earlier releases: " attr <pc> <mnem> <nEvents> {<pc> <mnem> <dest>
 * <count>}".
 */
void
writeAttr(std::ostream &os, const CycleAttribution &attr)
{
    os << " attr " << attr.pc << ' ' << encodeText(attr.mnemonic) << ' '
       << attr.events.size();
    for (const CycleAttribution::Event &event : attr.events) {
        os << ' ' << event.pc << ' ' << encodeText(event.mnemonic) << ' '
           << encodeText(event.dest) << ' ' << event.count;
    }
}

bool
readAttr(std::istream &is, CycleAttribution &attr)
{
    std::string mnemonic;
    size_t events = 0;
    if (!(is >> attr.pc >> mnemonic >> events) || events > 65536
        || !decodeText(mnemonic, attr.mnemonic)) {
        return false;
    }
    attr.events.resize(events);
    for (CycleAttribution::Event &event : attr.events) {
        std::string text, dest;
        if (!(is >> event.pc >> text >> dest >> event.count)
            || !decodeText(text, event.mnemonic)
            || !decodeText(dest, event.dest)) {
            return false;
        }
    }
    attr.valid = true;
    return true;
}

/** The optional per-cell attribution table — same opt-in rule as the
 *  attr section: " attrtab <nRows> {<pc> <mnem> <injections>
 *  <delayAce> <firstCorruptions> <nDest> {<dest> <count>}}". */
void
writeAttrTable(std::ostream &os,
               const std::vector<DelayAvfResult::AttrRow> &rows)
{
    os << " attrtab " << rows.size();
    for (const DelayAvfResult::AttrRow &row : rows) {
        os << ' ' << row.pc << ' ' << encodeText(row.mnemonic) << ' '
           << row.injections << ' ' << row.delayAce << ' '
           << row.firstCorruptions << ' ' << row.destinations.size();
        for (const auto &[dest, count] : row.destinations)
            os << ' ' << encodeText(dest) << ' ' << count;
    }
}

bool
readAttrTable(std::istream &is,
              std::vector<DelayAvfResult::AttrRow> &rows)
{
    size_t count = 0;
    if (!(is >> count) || count > 65536)
        return false;
    rows.resize(count);
    for (DelayAvfResult::AttrRow &row : rows) {
        std::string mnemonic;
        size_t dests = 0;
        if (!(is >> row.pc >> mnemonic >> row.injections >> row.delayAce
                 >> row.firstCorruptions >> dests)
            || dests > 1024 || !decodeText(mnemonic, row.mnemonic)) {
            return false;
        }
        for (size_t i = 0; i < dests; ++i) {
            std::string dest;
            uint64_t tally = 0;
            if (!(is >> dest >> tally))
                return false;
            std::string decoded;
            if (!decodeText(dest, decoded))
                return false;
            row.destinations[decoded] = tally;
        }
    }
    return true;
}

void
writeDavfResult(std::ostream &os, const DelayAvfResult &result)
{
    os << ' ' << doubleToText(result.delayAvf) << ' '
       << doubleToText(result.orDelayAvf) << ' '
       << doubleToText(result.staticWireFraction) << ' '
       << doubleToText(result.dynamicWireFraction) << ' '
       << doubleToText(result.groupAceWireFraction) << ' '
       << result.injections << ' ' << result.staticInjections << ' '
       << result.errorInjections << ' ' << result.multiBitInjections
       << ' ' << result.delayAceInjections << ' '
       << result.orAceInjections << ' ' << result.sdc << ' '
       << result.due << ' ' << result.aceInterference << ' '
       << result.aceCompounding << ' ' << result.skippedNoToggle << ' '
       << result.uniqueGroupSims << ' ' << result.skippedErrors << ' '
       << result.wiresInjected << ' ' << result.cyclesInjected;
    writeSkipReasons(os, result.skipReasons);
    if (result.attrValid)
        writeAttrTable(os, result.attribution);
}

bool
readDavfResult(std::istream &is, DelayAvfResult &result)
{
    std::string davf, ordavf, stat, dyn, group;
    if (!(is >> davf >> ordavf >> stat >> dyn >> group
             >> result.injections >> result.staticInjections
             >> result.errorInjections >> result.multiBitInjections
             >> result.delayAceInjections >> result.orAceInjections
             >> result.sdc >> result.due >> result.aceInterference
             >> result.aceCompounding >> result.skippedNoToggle
             >> result.uniqueGroupSims >> result.skippedErrors
             >> result.wiresInjected >> result.cyclesInjected)) {
        return false;
    }
    if (!textToDouble(davf, result.delayAvf)
        || !textToDouble(ordavf, result.orDelayAvf)
        || !textToDouble(stat, result.staticWireFraction)
        || !textToDouble(dyn, result.dynamicWireFraction)
        || !textToDouble(group, result.groupAceWireFraction)
        || !readSkipReasons(is, result.skipReasons)) {
        return false;
    }
    std::string tag;
    if (!(is >> tag))
        return true; // No attribution section (the common case).
    if (tag != "attrtab" || !readAttrTable(is, result.attribution))
        return false;
    result.attrValid = true;
    return true;
}

void
writeSavfFields(std::ostream &os, const SavfResult &result)
{
    os << doubleToText(result.savf) << ' ' << result.injections << ' '
       << result.aceInjections << ' ' << result.sdc << ' ' << result.due
       << ' ' << result.skippedErrors;
}

void
writeSavfResult(std::ostream &os, const SavfResult &result)
{
    os << ' ';
    writeSavfFields(os, result);
}

bool
readSavfResult(std::istream &is, SavfResult &result)
{
    std::string savf;
    if (!(is >> savf >> result.injections >> result.aceInjections
             >> result.sdc >> result.due >> result.skippedErrors)) {
        return false;
    }
    return textToDouble(savf, result.savf);
}

void
writeOutcomeFields(std::ostream &os, const InjectionCycleOutcome &outcome)
{
    os << outcome.cycle << ' ' << outcome.injections << ' '
       << outcome.staticInjections << ' ' << outcome.errorInjections
       << ' ' << outcome.multiBit << ' ' << outcome.delayAce << ' '
       << outcome.orAce << ' ' << outcome.sdc << ' ' << outcome.due
       << ' ' << outcome.interference << ' ' << outcome.compounding
       << ' ' << outcome.skippedNoToggle << ' '
       << outcome.uniqueGroupSims << ' ' << outcome.skippedErrors;
    writeSkipReasons(os, outcome.skipReasons);
    writeBits(os, outcome.wireDyn);
    writeBits(os, outcome.wireAce);
    if (outcome.attr.valid)
        writeAttr(os, outcome.attr);
}

void
writeOutcome(std::ostream &os, const InjectionCycleOutcome &outcome)
{
    os << "pcycle ";
    writeOutcomeFields(os, outcome);
    os << '\n';
}

bool
readOutcome(std::istream &is, InjectionCycleOutcome &outcome)
{
    if (!(is >> outcome.cycle >> outcome.injections
             >> outcome.staticInjections >> outcome.errorInjections
             >> outcome.multiBit >> outcome.delayAce >> outcome.orAce
             >> outcome.sdc >> outcome.due >> outcome.interference
             >> outcome.compounding >> outcome.skippedNoToggle
             >> outcome.uniqueGroupSims >> outcome.skippedErrors)) {
        return false;
    }
    if (!readSkipReasons(is, outcome.skipReasons)
        || !readBits(is, outcome.wireDyn)
        || !readBits(is, outcome.wireAce)) {
        return false;
    }
    const std::streampos mark = is.tellg();
    std::string tag;
    if (!(is >> tag))
        return true; // No attribution section (the common case).
    if (tag == "attr")
        return readAttr(is, outcome.attr);
    // An unrecognized tail belongs to the caller (the worker frame
    // appends a rusage suffix after the outcome fields); rewind so the
    // caller's own trailing-token handling sees it.
    is.clear();
    is.seekg(mark);
    return true;
}

} // namespace

const CheckpointCell *
Checkpoint::find(const CheckpointKey &key) const
{
    for (const CheckpointCell &cell : cells) {
        if (cell.key == key)
            return &cell;
    }
    return nullptr;
}

std::string
canonicalDelay(double delay)
{
    return doubleToText(delay);
}

std::string
serializeCheckpoint(const Checkpoint &checkpoint)
{
    std::ostringstream os;
    os << "davf-checkpoint v" << Checkpoint::kVersion << '\n';
    checkToken(checkpoint.configHash, "config hash");
    os << "config " << checkpoint.configHash << '\n';

    for (const CheckpointCell &cell : checkpoint.cells) {
        checkToken(cell.key.kind, "kind");
        checkToken(cell.key.benchmark, "benchmark");
        checkToken(cell.key.structure, "structure");
        checkToken(cell.key.delay, "delay");
        os << "cell ";
        writeKey(os, cell.key);
        if (cell.failed) {
            os << " failed " << cell.failReason << '\n';
        } else {
            os << " ok";
            if (cell.key.kind == "savf")
                writeSavfResult(os, cell.savf);
            else
                writeDavfResult(os, cell.davf);
            os << '\n';
        }
    }

    if (checkpoint.hasPartial) {
        os << "partial ";
        writeKey(os, checkpoint.partialKey);
        os << '\n';
        for (const InjectionCycleOutcome &outcome :
             checkpoint.partialCycles) {
            writeOutcome(os, outcome);
        }
    }
    os << "end\n";
    return os.str();
}

Result<Checkpoint>
parseCheckpoint(const std::string &text, CheckpointLoadStats *stats)
{
    using R = Result<Checkpoint>;
    std::istringstream is(text);
    std::string line;

    if (!std::getline(is, line)
        || line != "davf-checkpoint v"
                + std::to_string(Checkpoint::kVersion)) {
        return R::Err(ErrorKind::BadInput,
                      "checkpoint header mismatch: expected "
                      "'davf-checkpoint v"
                          + std::to_string(Checkpoint::kVersion)
                          + "', got '" + line + "'");
    }

    Checkpoint checkpoint;
    bool sawEnd = false;

    // The journal is written atomically, so a damaged line can only be
    // the result of an interrupted copy or similar — and then only the
    // final line can be torn. Lenient mode (stats != nullptr) drops
    // exactly such a torn tail line; damage anywhere else stays fatal
    // because it means the file was corrupted, not truncated.
    auto tolerateTornTail = [&]() -> bool {
        const bool last_line = is.peek() == std::char_traits<char>::eof();
        if (stats == nullptr || !last_line)
            return false;
        stats->truncatedTail = true;
        stats->droppedLine = line;
        return true;
    };

    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        std::istringstream ls(line);
        std::string tag;
        ls >> tag;
        if (tag == "config") {
            if (!(ls >> checkpoint.configHash)) {
                if (tolerateTornTail())
                    break;
                return R::Err(ErrorKind::BadInput,
                              "checkpoint: bad config line");
            }
        } else if (tag == "cell") {
            CheckpointCell cell;
            std::string status;
            bool ok = readKey(ls, cell.key) && (ls >> status);
            if (ok) {
                if (status == "failed") {
                    cell.failed = true;
                    std::getline(ls, cell.failReason);
                    if (!cell.failReason.empty()
                        && cell.failReason.front() == ' ')
                        cell.failReason.erase(0, 1);
                } else if (status == "ok") {
                    ok = cell.key.kind == "savf"
                        ? readSavfResult(ls, cell.savf)
                        : readDavfResult(ls, cell.davf);
                } else {
                    ok = false;
                }
            }
            if (!ok) {
                if (tolerateTornTail())
                    break;
                return R::Err(ErrorKind::BadInput,
                              "checkpoint: bad cell line: " + line);
            }
            checkpoint.cells.push_back(std::move(cell));
        } else if (tag == "partial") {
            if (!readKey(ls, checkpoint.partialKey)) {
                if (tolerateTornTail())
                    break;
                return R::Err(ErrorKind::BadInput,
                              "checkpoint: bad partial line: " + line);
            }
            checkpoint.hasPartial = true;
        } else if (tag == "pcycle") {
            if (!checkpoint.hasPartial)
                return R::Err(ErrorKind::BadInput,
                              "checkpoint: pcycle before partial");
            InjectionCycleOutcome outcome;
            if (!readOutcome(ls, outcome)) {
                if (tolerateTornTail())
                    break;
                return R::Err(ErrorKind::BadInput,
                              "checkpoint: bad pcycle line: " + line);
            }
            checkpoint.partialCycles.push_back(std::move(outcome));
        } else if (tag == "end") {
            sawEnd = true;
            break;
        } else {
            if (tolerateTornTail())
                break;
            return R::Err(ErrorKind::BadInput,
                          "checkpoint: unknown record '" + tag + "'");
        }
    }
    if (!sawEnd) {
        if (stats == nullptr) {
            return R::Err(ErrorKind::BadInput,
                          "checkpoint: truncated (no end record)");
        }
        stats->missingEnd = true;
    }
    if (checkpoint.configHash.empty())
        return R::Err(ErrorKind::BadInput,
                      "checkpoint: missing config record");
    return R::Ok(std::move(checkpoint));
}

void
saveCheckpoint(const std::string &path, const Checkpoint &checkpoint)
{
    // The whole-journal rewrite is the riskiest persistence moment a
    // campaign has (it happens after every cell and every injection
    // cycle); the crash point proves a kill mid-rewrite only ever
    // costs the in-flight save, never the previous journal.
    static const crashpoint::CrashPoint save_point("checkpoint.save");
    save_point.fire();
    writeFileAtomic(path, serializeCheckpoint(checkpoint));
}

Result<Checkpoint>
loadCheckpoint(const std::string &path, CheckpointLoadStats *stats)
{
    std::ifstream file(path, std::ios::binary);
    if (!file) {
        return Result<Checkpoint>::Err(
            ErrorKind::Io, "cannot open checkpoint '" + path + "'");
    }
    std::ostringstream contents;
    contents << file.rdbuf();
    return parseCheckpoint(contents.str(), stats);
}

std::string
serializeOutcomeFields(const InjectionCycleOutcome &outcome)
{
    std::ostringstream os;
    writeOutcomeFields(os, outcome);
    return os.str();
}

bool
parseOutcomeFields(std::istream &is, InjectionCycleOutcome &outcome)
{
    return readOutcome(is, outcome);
}

std::string
serializeSavfFields(const SavfResult &result)
{
    std::ostringstream os;
    writeSavfFields(os, result);
    return os.str();
}

bool
parseSavfFields(std::istream &is, SavfResult &result)
{
    return readSavfResult(is, result);
}

} // namespace davf
