/**
 * @file
 * IbexMini: a gate-level, 2-stage, in-order RV32I core.
 *
 * This is the repository's stand-in for the paper's synthesized Ibex core
 * (§VI-A). Like Ibex it is a small in-order pipeline with an instruction
 * prefetch buffer feeding a combined decode/execute stage, and it exposes
 * exactly the microarchitectural structures the paper studies:
 *
 *  - **prefetch** — fetch PC, a 2-entry prefetch FIFO, and the request /
 *    redirect logic toward the instruction port.
 *  - **decoder**  — instruction decode, immediate generation, control.
 *  - **regfile**  — 31 x 32-bit flop array (x0 hardwired), 2 read ports,
 *    1 write port; optionally protected by single-error-correcting
 *    Hamming ECC (38-bit codewords, no double-error detection).
 *  - **alu**      — adder/subtractor, barrel shifters, logic ops,
 *    comparators, and the branch-target adder.
 *  - **lsu**      — data-port request generation, byte enables, load data
 *    extraction/sign-extension, and the 2-cycle load state machine.
 *  - **ctl**      — writeback mux, branch resolution, pipeline control
 *    (not one of the paper's studied structures).
 *
 * Memory is a behavioral block (soc/memory.hh) outside the fault model,
 * with synchronous 1-cycle ports. Loads take 2 cycles, taken control
 * transfers 2 cycles (one bubble), everything else 1 cycle.
 */

#ifndef DAVF_SOC_IBEX_MINI_HH
#define DAVF_SOC_IBEX_MINI_HH

#include <memory>
#include <vector>

#include "builder/builder.hh"
#include "netlist/structure.hh"
#include "sim/cycle_sim.hh"
#include "soc/memory.hh"

namespace davf {

/** Build-time configuration of the core. */
struct IbexMiniConfig
{
    /** Protect the register file with SEC Hamming ECC. */
    bool eccRegfile = false;

    /**
     * Add an iterative (33-cycle) shift-and-add hardware multiplier —
     * the shape of Ibex's "slow" multiplier option — decoded from the
     * RV32M MUL encoding and exposed as a sixth structure ("MUL").
     * Off by default: the paper's case study covers five structures and
     * the default netlist stays exactly the paper configuration.
     */
    bool enableMul = false;

    /** log2 of RAM words (default 16K words = 64 KiB). */
    unsigned memWordsLog2 = 14;
};

/** A fully built IbexMini SoC: core netlist + behavioral memory. */
class IbexMini
{
  public:
    /** Build the SoC with @p image preloaded into memory. */
    IbexMini(const IbexMiniConfig &config,
             const std::vector<uint32_t> &image);

    const Netlist &netlist() const { return nl; }
    const IbexMiniConfig &config() const { return cfg; }
    MemoryModel &memory() { return *mem; }
    const MemoryModel &memory() const { return *mem; }

    /** The paper's structures: ALU, Decoder, Regfile, LSU, Prefetch. */
    const StructureRegistry &structures() const { return *registry; }

    /** Architectural register value as seen by @p sim (ECC-corrected). */
    uint32_t readRegister(const CycleSimulator &sim, unsigned index) const;

    /** Net indicating the program has written the halt port. */
    NetId haltedNet() const { return haltedNetId; }

  private:
    void build(const std::vector<uint32_t> &image);

    IbexMiniConfig cfg;
    Netlist nl;
    std::shared_ptr<MemoryModel> mem;
    std::unique_ptr<StructureRegistry> registry;
    NetId haltedNetId = kInvalidId;

    /** Q nets of architectural registers x1..x31 (codeword bits). */
    std::vector<Bus> regQ;
};

} // namespace davf

#endif // DAVF_SOC_IBEX_MINI_HH
