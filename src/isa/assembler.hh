/**
 * @file
 * A small two-pass RV32I assembler.
 *
 * The paper's workloads are Beebs benchmarks compiled for the Ibex RISC-V
 * core; lacking a cross-toolchain, this assembler turns hand-written
 * RV32I assembly (see isa/benchmarks.hh) into flat memory images runnable
 * both on the reference ISS and on the gate-level IbexMini core.
 *
 * Supported subset (matching the hardware): LUI AUIPC JAL JALR,
 * BEQ/BNE/BLT/BGE/BLTU/BGEU, LW/LB/LBU, SW/SB, the full RV32I ALU
 * register/immediate ops, plus the pseudo-instructions nop, mv, li, la,
 * not, neg, j, jal label, call, ret, beqz, bnez, bgt, ble, bgtu, bleu,
 * seqz, snez. Directives: `.word v[, v...]`, `.space nbytes`, labels
 * (`name:`), comments (`#` or `//`).
 *
 * Halfword memory ops and CSRs are intentionally unsupported (the core
 * does not implement them); using one is a fatal error.
 */

#ifndef DAVF_ISA_ASSEMBLER_HH
#define DAVF_ISA_ASSEMBLER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace davf {

/**
 * Assemble @p source into a little-endian word image based at @p base
 * (byte address; must be word aligned). Errors are fatal with a
 * line-numbered message.
 */
std::vector<uint32_t> assemble(const std::string &source,
                               uint32_t base = 0);

/** Parse a register name (x0..x31 or ABI name); fatal on error. */
unsigned parseRegister(const std::string &token);

} // namespace davf

#endif // DAVF_ISA_ASSEMBLER_HH
