/**
 * @file
 * Tests for the workload abstraction: SocWorkload observation of the
 * IbexMini memory (done/output/archHash semantics) and TraceWorkload
 * edge cases.
 */

#include <gtest/gtest.h>

#include "src/core/workload.hh"
#include "src/isa/assembler.hh"
#include "src/soc/ibex_mini.hh"
#include "src/soc/soc_workload.hh"

namespace davf {
namespace {

const char *kTinyProgram = R"(
  li t6, 0x10000
  li a0, 11
  sw a0, 0(t6)
  la a1, buf
  li a2, 0x5a5a5a5a
  sw a2, 0(a1)
  li a0, 22
  sw a0, 0(t6)
  sw x0, 4(t6)
hang:
  j hang
buf: .space 4
)";

TEST(SocWorkload, ObservesOutputsAndHalt)
{
    IbexMini soc({}, assemble(kTinyProgram));
    SocWorkload workload(soc);
    CycleSimulator sim(soc.netlist());

    EXPECT_FALSE(workload.done(sim));
    EXPECT_TRUE(workload.outputTrace(sim).empty());

    uint64_t watchdog = 0;
    std::vector<size_t> output_growth;
    while (!workload.done(sim) && ++watchdog < 2000) {
        output_growth.push_back(workload.outputTrace(sim).size());
        sim.step();
    }
    ASSERT_TRUE(workload.done(sim));
    EXPECT_EQ(workload.outputTrace(sim),
              (std::vector<uint32_t>{11, 22}));
    // The trace grows monotonically.
    for (size_t i = 1; i < output_growth.size(); ++i)
        EXPECT_GE(output_growth[i], output_growth[i - 1]);
}

TEST(SocWorkload, ArchHashTracksMemoryWrites)
{
    IbexMini soc({}, assemble(kTinyProgram));
    SocWorkload workload(soc);
    CycleSimulator sim(soc.netlist());

    const uint64_t initial = workload.archHash(sim);
    uint64_t watchdog = 0;
    while (!workload.done(sim) && ++watchdog < 2000)
        sim.step();
    // The program stored 0x5a5a5a5a into buf: the hash must move.
    EXPECT_NE(workload.archHash(sim), initial);
    EXPECT_EQ(workload.memory(sim).word(
                  // buf is the word right after the 12-word program...
                  // locate it robustly: scan for the value.
                  [&] {
                      const auto &words = workload.memory(sim).words();
                      for (uint32_t addr = 0; addr < words.size();
                           ++addr) {
                          if (words[addr] == 0x5a5a5a5a)
                              return addr * 4;
                      }
                      return 0u;
                  }()),
              0x5a5a5a5au);
}

TEST(SocWorkload, HaltFlagVisibleOnNet)
{
    IbexMini soc({}, assemble(kTinyProgram));
    SocWorkload workload(soc);
    CycleSimulator sim(soc.netlist());
    EXPECT_FALSE(sim.value(soc.haltedNet()));
    uint64_t watchdog = 0;
    while (!workload.done(sim) && ++watchdog < 2000)
        sim.step();
    // The halted behavioral output becomes visible one edge later.
    sim.step();
    EXPECT_TRUE(sim.value(soc.haltedNet()));
}

TEST(SocWorkload, IndependentSimulatorsSeparateState)
{
    IbexMini soc({}, assemble(kTinyProgram));
    SocWorkload workload(soc);
    CycleSimulator fast(soc.netlist());
    CycleSimulator slow(soc.netlist());
    for (int i = 0; i < 60; ++i)
        fast.step();
    EXPECT_NE(workload.outputTrace(fast).size(),
              workload.outputTrace(slow).size());
}

TEST(TraceWorkload, DoneAtFixedCycleCount)
{
    Netlist nl;
    ModuleBuilder b(nl);
    const CellId sink = nl.addBehavioral(
        "sink", std::make_shared<TraceSinkModel>(1),
        {{b.constant(true), b.constant(true)}}, {});
    nl.finalize();

    TraceWorkload workload(sink, 5);
    CycleSimulator sim(nl);
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(workload.done(sim), i >= 5);
        sim.step();
    }
    EXPECT_TRUE(workload.done(sim));
    EXPECT_EQ(workload.outputTrace(sim).size(), 5u);
    EXPECT_EQ(workload.maxGoldenCycles(), 6u);
}

TEST(TraceWorkload, DefaultArchHashIsZero)
{
    Netlist nl;
    ModuleBuilder b(nl);
    const CellId sink = nl.addBehavioral(
        "sink", std::make_shared<TraceSinkModel>(1),
        {{b.constant(false), b.constant(false)}}, {});
    nl.finalize();
    TraceWorkload workload(sink, 3);
    CycleSimulator sim(nl);
    EXPECT_EQ(workload.archHash(sim), 0u);
}

} // namespace
} // namespace davf
